#include "dproc/procfs/procfs.hpp"

#include <sstream>

namespace dproc::procfs {

ProcFs::ProcFs() : root_(std::make_unique<Node>()) {}

Result<std::vector<std::string>> ProcFs::split_path(const std::string& path) {
  if (path.empty() || path.front() != '/') {
    return Status::invalid_argument("path must be absolute: '" + path + "'");
  }
  std::vector<std::string> components;
  std::string current;
  for (std::size_t i = 1; i <= path.size(); ++i) {
    if (i == path.size() || path[i] == '/') {
      if (!current.empty()) {
        if (current == "." || current == "..") {
          return Status::invalid_argument("'.' and '..' are not supported");
        }
        components.push_back(std::move(current));
        current.clear();
      }
    } else {
      current += path[i];
    }
  }
  return components;
}

const ProcFs::Node* ProcFs::find(const std::string& path) const {
  auto components = split_path(path);
  if (!components) return nullptr;
  const Node* node = root_.get();
  for (const std::string& component : components.value()) {
    auto it = node->children.find(component);
    if (it == node->children.end()) return nullptr;
    node = it->second.get();
  }
  return node;
}

ProcFs::Node* ProcFs::ensure_directories(
    const std::vector<std::string>& components, std::size_t count,
    Status& status) {
  Node* node = root_.get();
  for (std::size_t i = 0; i < count; ++i) {
    if (!node->directory) {
      status = Status::invalid_argument("'" + components[i - 1] +
                                        "' is a file, not a directory");
      return nullptr;
    }
    auto [it, created] = node->children.try_emplace(components[i]);
    if (created) it->second = std::make_unique<Node>();
    node = it->second.get();
  }
  if (!node->directory) {
    status = Status::invalid_argument("path component is a file");
    return nullptr;
  }
  return node;
}

Status ProcFs::register_file(const std::string& path, ReadHandler read,
                             WriteHandler write) {
  auto components = split_path(path);
  if (!components) return components.status();
  const auto& parts = components.value();
  if (parts.empty()) {
    return Status::invalid_argument("cannot register the root as a file");
  }
  Status status;
  Node* dir = ensure_directories(parts, parts.size() - 1, status);
  if (dir == nullptr) return status;

  auto [it, created] = dir->children.try_emplace(parts.back());
  if (!created && it->second->directory) {
    return Status::already_exists("'" + path + "' exists as a directory");
  }
  if (created) it->second = std::make_unique<Node>();
  Node& file = *it->second;
  file.directory = false;
  file.read = std::move(read);
  file.write = std::move(write);
  return Status::ok();
}

Status ProcFs::mkdir(const std::string& path) {
  auto components = split_path(path);
  if (!components) return components.status();
  Status status;
  if (ensure_directories(components.value(), components.value().size(),
                         status) == nullptr) {
    return status;
  }
  return Status::ok();
}

Status ProcFs::remove(const std::string& path) {
  auto components = split_path(path);
  if (!components) return components.status();
  const auto& parts = components.value();
  if (parts.empty()) return Status::invalid_argument("cannot remove the root");
  Node* node = root_.get();
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    auto it = node->children.find(parts[i]);
    if (it == node->children.end()) {
      return Status::not_found("'" + path + "' does not exist");
    }
    node = it->second.get();
  }
  if (node->children.erase(parts.back()) == 0) {
    return Status::not_found("'" + path + "' does not exist");
  }
  return Status::ok();
}

Result<std::string> ProcFs::read(const std::string& path) const {
  const Node* node = find(path);
  if (node == nullptr) return Status::not_found("'" + path + "' does not exist");
  if (node->directory) {
    return Status::invalid_argument("'" + path + "' is a directory");
  }
  if (!node->read) return std::string{};
  return node->read();
}

Status ProcFs::write(const std::string& path, const std::string& data) {
  const Node* node = find(path);
  if (node == nullptr) return Status::not_found("'" + path + "' does not exist");
  if (node->directory) {
    return Status::invalid_argument("'" + path + "' is a directory");
  }
  if (!node->write) {
    return Status{StatusCode::kPermissionDenied, "'" + path + "' is read-only"};
  }
  return node->write(data);
}

Result<std::vector<std::string>> ProcFs::list(const std::string& path) const {
  const Node* node = find(path);
  if (node == nullptr) return Status::not_found("'" + path + "' does not exist");
  if (!node->directory) {
    return Status::invalid_argument("'" + path + "' is not a directory");
  }
  std::vector<std::string> entries;
  entries.reserve(node->children.size());
  for (const auto& [name, child] : node->children) {
    entries.push_back(child->directory ? name + "/" : name);
  }
  return entries;
}

bool ProcFs::exists(const std::string& path) const {
  return find(path) != nullptr;
}

bool ProcFs::is_directory(const std::string& path) const {
  const Node* node = find(path);
  return node != nullptr && node->directory;
}

void ProcFs::render(const Node& node, const std::string& name, int depth,
                    std::string& out) {
  if (depth >= 0) {
    out.append(static_cast<std::size_t>(depth) * 2, ' ');
    out += name;
    if (node.directory) out += '/';
    out += '\n';
  }
  for (const auto& [child_name, child] : node.children) {
    render(*child, child_name, depth + 1, out);
  }
}

std::string ProcFs::tree() const {
  std::string out;
  render(*root_, "", -1, out);
  return out;
}

}  // namespace dproc::procfs
