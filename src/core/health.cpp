#include "dproc/core/health.hpp"

#include <algorithm>
#include <sstream>

#include "dproc/host/host.hpp"
#include "dproc/telemetry/telemetry.hpp"

namespace dproc::core {

double MetricHistory::window_sum(std::size_t window) const {
  const std::size_t n = std::min(window, size_);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) sum += at(size_ - 1 - i);
  return sum;
}

double MetricHistory::window_active(std::size_t window) const {
  const std::size_t n = std::min(window, size_);
  if (n == 0) return 0.0;
  std::size_t active = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (at(size_ - 1 - i) != 0.0) ++active;
  }
  return static_cast<double>(active) / static_cast<double>(n);
}

HealthEngine::HealthEngine(host::Host& host, telemetry::FlightRecorder* flight,
                           HealthConfig config)
    : host_(host),
      flight_(flight),
      config_(std::move(config)),
      tm_score_(host.telemetry().gauge("health", "score")),
      tm_incidents_(host.telemetry().counter("health", "incidents")) {
  // Failure-signal series, resolved once. Counter series take per-poll
  // deltas; the census series ("peers/stale") and the score's own history
  // are pushed directly.
  telemetry::Registry& tm = host_.telemetry();
  const std::pair<const char*, const telemetry::Counter*> counters[] = {
      {"net/drops", &tm.counter("net", "drops")},
      {"trace/slo_violations", &tm.counter("trace", "slo_violations")},
      {"dmon/collect_errors", &tm.counter("dmon", "collect_errors")},
      {"kecho/evictions", &tm.counter("kecho", "evictions")},
      {"registry/failovers", &tm.counter("registry", "failovers")},
  };
  for (const auto& [name, counter] : counters) {
    Series series;
    series.name = name;
    series.counter = counter;
    series.last_value = counter->value();
    series.history.configure(config_.history_depth);
    series_.push_back(std::move(series));
  }
  for (const char* name : {"peers/stale", "health/score"}) {
    Series series;
    series.name = name;
    series.history.configure(config_.history_depth);
    series_.push_back(std::move(series));
  }
  series_names_.reserve(series_.size());
  for (const Series& s : series_) series_names_.push_back(s.name);

  // Default watchdogs — the paper-motivated post-mortem triggers: a member
  // eviction, a registry leader failover, or a staleness-SLO breach each
  // opens an incident. User rules append.
  rules_ = {WatchdogRule{"kecho/evictions", 1.0, 1},
            WatchdogRule{"registry/failovers", 1.0, 1},
            WatchdogRule{"trace/slo_violations", 1.0, 1}};
  rules_.insert(rules_.end(), config_.watchdogs.begin(),
                config_.watchdogs.end());
  tm_score_.set(score_);
}

void HealthEngine::set_node(std::uint32_t node, std::string name) {
  node_ = node;
  node_name_ = std::move(name);
}

HealthEngine::Series* HealthEngine::find_series(const std::string& name) {
  for (Series& s : series_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const std::vector<std::string>& HealthEngine::series_names() const {
  return series_names_;
}

const MetricHistory* HealthEngine::history(const std::string& series) const {
  for (const Series& s : series_) {
    if (s.name == series) return &s.history;
  }
  return nullptr;
}

void HealthEngine::on_poll(const HealthSnapshot& snapshot, SimTime now) {
  last_snapshot_ = snapshot;
  for (Series& s : series_) {
    if (s.counter == nullptr) continue;
    const std::uint64_t value = s.counter->value();
    const std::uint64_t delta = value >= s.last_value ? value - s.last_value
                                                      : value;  // reset-safe
    s.last_value = value;
    s.history.push(static_cast<double>(delta));
  }
  if (Series* stale = find_series("peers/stale")) {
    stale->history.push(
        static_cast<double>(snapshot.peers_stale + snapshot.peers_dead));
  }

  // Score: 100 minus weighted penalties. Counter penalties scale with the
  // fraction of the score window that saw a nonzero delta (so one bad poll
  // ages out after score_window clean ones); staleness scales with the
  // fraction of peers not live right now.
  const auto window = static_cast<std::size_t>(
      std::max(config_.score_window, 1));
  auto active = [this, window](const char* name) {
    for (const Series& s : series_) {
      if (s.name == name) return s.history.window_active(window);
    }
    return 0.0;
  };
  const double stale_frac =
      snapshot.peers_total > 0
          ? static_cast<double>(snapshot.peers_stale + snapshot.peers_dead) /
                static_cast<double>(snapshot.peers_total)
          : 0.0;
  const double penalty =
      config_.weight_drops * active("net/drops") +
      config_.weight_slo * active("trace/slo_violations") +
      config_.weight_collect * active("dmon/collect_errors") +
      config_.weight_evict * std::max(active("kecho/evictions"),
                                      active("registry/failovers")) +
      config_.weight_stale * stale_frac;
  score_ = std::clamp(100.0 - penalty, 0.0, 100.0);
  if (Series* self = find_series("health/score")) self->history.push(score_);
  tm_score_.set(score_);

  const bool now_degraded = score_ < config_.trust_threshold;
  if (now_degraded != degraded_) {
    degraded_ = now_degraded;
    if (flight_ != nullptr) {
      flight_->record(now_degraded ? telemetry::Severity::kWarn
                                   : telemetry::Severity::kInfo,
                      telemetry::FlightSubsystem::kHealth,
                      now_degraded ? telemetry::FlightCode::kHealthDegraded
                                   : telemetry::FlightCode::kHealthRecovered,
                      static_cast<std::uint64_t>(score_));
    }
  }

  for (std::size_t r = 0; r < rules_.size(); ++r) {
    const WatchdogRule& rule = rules_[r];
    Series* series = find_series(rule.series);
    if (series == nullptr) continue;
    const double delta = series->history.window_sum(
        static_cast<std::size_t>(std::max(rule.window, 1)));
    if (delta < rule.min_delta) continue;
    // A sustained signal re-trips every poll; the dedup window below folds
    // the repeats into the open incident as symptoms.
    if (flight_ != nullptr) {
      flight_->record(telemetry::Severity::kWarn,
                      telemetry::FlightSubsystem::kHealth,
                      telemetry::FlightCode::kWatchdogTrip, r,
                      static_cast<std::uint64_t>(delta));
    }
    open_incident(rule.series, now);
  }
}

void HealthEngine::open_incident(const std::string& trigger, SimTime now) {
  if (last_open_ns_ >= 0 && !incidents_.empty() &&
      now.ns() - last_open_ns_ <= config_.dedup_window.ns()) {
    ++incidents_.back().symptoms;
    ++deduped_;
    return;
  }
  last_open_ns_ = now.ns();
  ++opened_;
  tm_incidents_.add();

  IncidentBundle bundle;
  bundle.node = node_;
  bundle.node_name = node_name_;
  bundle.id = opened_;
  bundle.opened_ns = now.ns();
  bundle.trigger = trigger;
  bundle.score = score_;
  if (flight_ != nullptr) {
    flight_->record(telemetry::Severity::kError,
                    telemetry::FlightSubsystem::kHealth,
                    telemetry::FlightCode::kIncidentOpened, opened_);
    snapshot_scratch_.clear();
    flight_->snapshot(snapshot_scratch_);
    const std::size_t keep =
        std::min(config_.incident_events, snapshot_scratch_.size());
    bundle.events.assign(snapshot_scratch_.end() - static_cast<long>(keep),
                         snapshot_scratch_.end());
  }
  bundle.history.reserve(series_.size());
  for (const Series& s : series_) {
    std::vector<double> values;
    values.reserve(s.history.size());
    for (std::size_t i = 0; i < s.history.size(); ++i) {
      values.push_back(s.history.at(i));
    }
    bundle.history.emplace_back(s.name, std::move(values));
  }
  incidents_.push_back(std::move(bundle));
  if (incidents_.size() > std::max<std::size_t>(config_.incident_capacity, 1)) {
    incidents_.erase(incidents_.begin());
  }
}

std::string HealthEngine::render() const {
  std::ostringstream out;
  out << "score " << score_ << " trusted " << (trusted() ? 1 : 0)
      << " threshold " << config_.trust_threshold << "\n"
      << "peers total " << last_snapshot_.peers_total << " stale "
      << last_snapshot_.peers_stale << " dead " << last_snapshot_.peers_dead
      << "\n";
  const auto window =
      static_cast<std::size_t>(std::max(config_.score_window, 1));
  for (const Series& s : series_) {
    out << "series " << s.name << " window_sum " << s.history.window_sum(window)
        << " active " << s.history.window_active(window) << " depth "
        << s.history.size() << "/" << s.history.depth() << "\n";
  }
  out << "incidents retained " << incidents_.size() << " opened " << opened_
      << " deduped " << deduped_ << "\n";
  return out.str();
}

std::string HealthEngine::render_incidents() const {
  return render_bundles(incidents_);
}

}  // namespace dproc::core
