#include <cstdlib>
#include <sstream>

#include "dproc/core/tuning.hpp"
#include "dproc/net/wire.hpp"

namespace dproc::core {

namespace {

Result<double> parse_number(const std::string& token, const char* what) {
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0') {
    return Status::invalid_argument(std::string{"malformed "} + what + ": '" +
                                    token + "'");
  }
  return value;
}

Result<double> parse_percent(const std::string& token) {
  std::string body = token;
  if (!body.empty() && body.back() == '%') body.pop_back();
  return parse_number(body, "percentage");
}

Result<ThresholdKind> parse_direction(const std::string& token) {
  if (token == "above") return ThresholdKind::kAbove;
  if (token == "below") return ThresholdKind::kBelow;
  return Status::invalid_argument("expected 'above' or 'below', got '" +
                                  token + "'");
}

/// A command line with leftover tokens is a typo ("period 2 5") or a
/// misremembered syntax; silently ignoring the tail would make the write
/// a partial no-op, so the whole request is rejected instead.
Status reject_trailing(std::istringstream& words, const std::string& command) {
  std::string extra;
  if (words >> extra) {
    return Status::invalid_argument(command + ": unexpected trailing token '" +
                                    extra + "'");
  }
  return Status::ok();
}

}  // namespace

Result<TuningConfig> parse_control_commands(const std::string& text) {
  TuningConfig config;
  std::istringstream lines{text};
  std::string line;
  std::size_t consumed = 0;

  while (std::getline(lines, line)) {
    consumed += line.size() + 1;
    std::istringstream words{line};
    std::string command;
    if (!(words >> command) || command.starts_with('#')) continue;

    if (command == "clear") {
      config.clear = true;
    } else if (command == "period") {
      // `period <sec>` or `period <metric> <sec> [if <metric> above|below <v>]`
      std::string first, second;
      if (!(words >> first)) {
        return Status::invalid_argument("period: missing argument");
      }
      if (!(words >> second)) {
        auto sec = parse_number(first, "period");
        if (!sec) return sec.status();
        if (sec.value() <= 0) {
          return Status::invalid_argument("period must be positive");
        }
        config.default_period = seconds(sec.value());
      } else {
        MetricPeriod mp;
        mp.metric = first;
        auto sec = parse_number(second, "period");
        if (!sec) return sec.status();
        if (sec.value() <= 0) {
          return Status::invalid_argument("period must be positive");
        }
        mp.period = seconds(sec.value());
        std::string kw;
        if (words >> kw) {
          if (kw != "if") {
            return Status::invalid_argument("period: expected 'if', got '" +
                                            kw + "'");
          }
          std::string cond_metric, direction, value;
          if (!(words >> cond_metric >> direction >> value)) {
            return Status::invalid_argument(
                "period: condition needs '<metric> above|below <value>'");
          }
          auto kind = parse_direction(direction);
          if (!kind) return kind.status();
          auto v = parse_number(value, "condition value");
          if (!v) return v.status();
          mp.conditional = true;
          mp.cond_metric = cond_metric;
          mp.cond_kind = kind.value();
          mp.cond_value = v.value();
        }
        config.metric_periods.push_back(std::move(mp));
      }
    } else if (command == "threshold") {
      std::string metric, kind_token;
      if (!(words >> metric >> kind_token)) {
        return Status::invalid_argument(
            "threshold: usage 'threshold <metric> above|below|range|change ...'");
      }
      Threshold t;
      t.metric = metric;
      std::string a, b;
      if (kind_token == "above" || kind_token == "below") {
        if (!(words >> a)) {
          return Status::invalid_argument("threshold: missing bound");
        }
        auto v = parse_number(a, "threshold bound");
        if (!v) return v.status();
        t.kind = kind_token == "above" ? ThresholdKind::kAbove
                                       : ThresholdKind::kBelow;
        t.a = v.value();
      } else if (kind_token == "range") {
        if (!(words >> a >> b)) {
          return Status::invalid_argument("threshold range: need two bounds");
        }
        auto lo = parse_number(a, "range bound");
        auto hi = parse_number(b, "range bound");
        if (!lo) return lo.status();
        if (!hi) return hi.status();
        if (lo.value() > hi.value()) {
          return Status::invalid_argument("threshold range: lo > hi");
        }
        t.kind = ThresholdKind::kRange;
        t.a = lo.value();
        t.b = hi.value();
      } else if (kind_token == "change") {
        if (!(words >> a)) {
          return Status::invalid_argument("threshold change: missing percent");
        }
        auto pct = parse_percent(a);
        if (!pct) return pct.status();
        if (pct.value() < 0) {
          return Status::invalid_argument(
              "threshold change: percentage must be >= 0");
        }
        t.kind = ThresholdKind::kChangePct;
        t.a = pct.value();
      } else {
        return Status::invalid_argument("threshold: unknown kind '" +
                                        kind_token + "'");
      }
      config.thresholds.push_back(std::move(t));
    } else if (command == "window") {
      std::string module, value;
      if (!(words >> module >> value)) {
        return Status::invalid_argument("window: usage 'window <module> <seconds>'");
      }
      auto sec = parse_number(value, "window");
      if (!sec) return sec.status();
      if (sec.value() <= 0) {
        return Status::invalid_argument("window must be positive");
      }
      config.module_periods.emplace_back(module, seconds(sec.value()));
    } else if (command == "differential") {
      std::string pct_token;
      if (!(words >> pct_token)) {
        return Status::invalid_argument("differential: missing percentage");
      }
      auto pct = parse_percent(pct_token);
      if (!pct) return pct.status();
      if (pct.value() < 0) {
        return Status::invalid_argument(
            "differential: percentage must be >= 0");
      }
      config.differential_pct = pct.value();
    } else if (command == "fuel") {
      std::string value;
      if (!(words >> value)) {
        return Status::invalid_argument("fuel: usage 'fuel <instructions>'");
      }
      auto n = parse_number(value, "fuel");
      if (!n) return n.status();
      // Bounds are re-checked at apply() (wire events bypass the parser);
      // rejecting here surfaces the error to the control-file writer.
      if (n.value() < 1) {
        return Status::invalid_argument(
            "fuel: filter instruction limit must be positive");
      }
      if (n.value() >
          static_cast<double>(ecode::VmLimits::kMaxInstructionLimit)) {
        return Status::invalid_argument(
            "fuel: filter instruction limit exceeds hard ceiling (" +
            std::to_string(ecode::VmLimits::kMaxInstructionLimit) + ")");
      }
      config.max_filter_instructions = static_cast<std::uint64_t>(n.value());
    } else if (command == "filter") {
      // Everything after the `filter` keyword — same line and all following
      // lines — is E-code source.
      std::string rest;
      std::getline(words, rest);
      std::string remainder{text.substr(std::min(consumed, text.size()))};
      std::string source = rest + "\n" + remainder;
      // Trim leading whitespace so "filter {..." and a bare block both work.
      const auto begin = source.find_first_not_of(" \t\r\n");
      config.filter_source =
          begin == std::string::npos ? std::string{} : source.substr(begin);
      if (config.filter_source->empty()) {
        return Status::invalid_argument("filter: missing source");
      }
      break;
    } else if (command == "nofilter") {
      config.filter_source = std::string{};
    } else {
      return Status::invalid_argument("unknown control command '" + command +
                                      "'");
    }
    Status trailing = reject_trailing(words, command);
    if (!trailing) return trailing;
  }
  return config;
}

std::vector<std::uint8_t> encode_tuning(const TuningConfig& config) {
  net::ByteWriter w;
  w.u8(config.clear ? 1 : 0);
  w.u8(config.default_period ? 1 : 0);
  if (config.default_period) w.i64(config.default_period->ns());

  w.u32(static_cast<std::uint32_t>(config.metric_periods.size()));
  for (const MetricPeriod& mp : config.metric_periods) {
    w.str(mp.metric);
    w.i64(mp.period.ns());
    w.u8(mp.conditional ? 1 : 0);
    if (mp.conditional) {
      w.str(mp.cond_metric);
      w.u8(static_cast<std::uint8_t>(mp.cond_kind));
      w.f64(mp.cond_value);
    }
  }

  w.u32(static_cast<std::uint32_t>(config.thresholds.size()));
  for (const Threshold& t : config.thresholds) {
    w.str(t.metric);
    w.u8(static_cast<std::uint8_t>(t.kind));
    w.f64(t.a);
    w.f64(t.b);
  }

  w.u8(config.differential_pct ? 1 : 0);
  if (config.differential_pct) w.f64(*config.differential_pct);
  w.u8(config.filter_source ? 1 : 0);
  if (config.filter_source) w.str(*config.filter_source);

  w.u32(static_cast<std::uint32_t>(config.module_periods.size()));
  for (const auto& [module, period] : config.module_periods) {
    w.str(module);
    w.i64(period.ns());
  }

  // Appended fields go at the end (wire-compat convention).
  w.u8(config.max_filter_instructions ? 1 : 0);
  if (config.max_filter_instructions) w.u64(*config.max_filter_instructions);
  return w.take();
}

Result<TuningConfig> decode_tuning(std::span<const std::uint8_t> bytes) {
  net::ByteReader r{bytes};
  TuningConfig config;
  config.clear = r.u8() != 0;
  if (r.u8() != 0) config.default_period = SimDuration{r.i64()};

  const std::uint32_t period_count = r.u32();
  for (std::uint32_t i = 0; i < period_count && r.ok(); ++i) {
    MetricPeriod mp;
    mp.metric = r.str();
    mp.period = SimDuration{r.i64()};
    mp.conditional = r.u8() != 0;
    if (mp.conditional) {
      mp.cond_metric = r.str();
      mp.cond_kind = static_cast<ThresholdKind>(r.u8());
      mp.cond_value = r.f64();
    }
    config.metric_periods.push_back(std::move(mp));
  }

  const std::uint32_t threshold_count = r.u32();
  for (std::uint32_t i = 0; i < threshold_count && r.ok(); ++i) {
    Threshold t;
    t.metric = r.str();
    t.kind = static_cast<ThresholdKind>(r.u8());
    t.a = r.f64();
    t.b = r.f64();
    config.thresholds.push_back(std::move(t));
  }

  if (r.u8() != 0) config.differential_pct = r.f64();
  if (r.u8() != 0) config.filter_source = r.str();

  const std::uint32_t window_count = r.u32();
  for (std::uint32_t i = 0; i < window_count && r.ok(); ++i) {
    std::string module = r.str();
    const SimDuration period{r.i64()};
    config.module_periods.emplace_back(std::move(module), period);
  }
  if (r.u8() != 0) config.max_filter_instructions = r.u64();
  if (!r.ok()) {
    return Status::invalid_argument("malformed tuning payload");
  }
  return config;
}

}  // namespace dproc::core
