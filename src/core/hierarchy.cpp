#include "dproc/core/hierarchy.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace dproc::core {

std::vector<std::uint32_t> HierarchyLayout::duty_zones(std::size_t node) const {
  std::vector<std::uint32_t> duties;
  for (const HierarchyZone& zone : zones_) {
    if (std::find(zone.candidates.begin(), zone.candidates.end(), node) !=
        zone.candidates.end()) {
      duties.push_back(zone.id);
    }
  }
  // Zones are built leaf tier first, so duties come out leaf-first already.
  return duties;
}

std::optional<std::size_t> HierarchyLayout::acting(
    const HierarchyZone& zone,
    const std::function<bool(std::size_t)>& alive) const {
  for (std::size_t candidate : zone.candidates) {
    if (alive(candidate)) return candidate;
  }
  return std::nullopt;
}

HierarchyLayout build_hierarchy(std::size_t node_count,
                                const HierarchyConfig& config) {
  if (node_count == 0) throw std::invalid_argument{"hierarchy needs nodes"};
  if (config.zone_size == 0 || config.fanout < 2) {
    throw std::invalid_argument{"hierarchy needs zone_size >= 1, fanout >= 2"};
  }
  HierarchyLayout layout;
  layout.node_count_ = node_count;
  layout.leaf_of_.resize(node_count);

  // Tier 0: consecutive slices of zone_size nodes.
  std::vector<std::uint32_t> tier;  // zone ids of the tier being grouped
  for (std::size_t first = 0; first < node_count;
       first += config.zone_size) {
    HierarchyZone zone;
    zone.id = static_cast<std::uint32_t>(layout.zones_.size());
    zone.tier = 0;
    zone.name = "t0.z" + std::to_string(tier.size());
    zone.first_node = first;
    zone.node_count = std::min(config.zone_size, node_count - first);
    for (std::size_t i = 0; i < zone.node_count; ++i) {
      zone.members.push_back(first + i);
      layout.leaf_of_[first + i] = zone.id;
    }
    zone.candidates = zone.members;
    tier.push_back(zone.id);
    layout.zones_.push_back(std::move(zone));
  }

  // Upper tiers: group `fanout` consecutive zones until one root remains.
  std::uint32_t tier_index = 1;
  while (tier.size() > 1) {
    std::vector<std::uint32_t> next;
    for (std::size_t first = 0; first < tier.size();
         first += config.fanout) {
      const std::size_t group =
          std::min(config.fanout, tier.size() - first);
      HierarchyZone zone;
      zone.id = static_cast<std::uint32_t>(layout.zones_.size());
      zone.tier = tier_index;
      zone.name = "t" + std::to_string(tier_index) + ".z" +
                  std::to_string(next.size());
      for (std::size_t i = 0; i < group; ++i) {
        const std::uint32_t child = tier[first + i];
        zone.children.push_back(child);
        layout.zones_[child].parent = zone.id;
      }
      const HierarchyZone& first_child = layout.zones_[zone.children.front()];
      const HierarchyZone& last_child = layout.zones_[zone.children.back()];
      zone.first_node = first_child.first_node;
      zone.node_count = last_child.first_node + last_child.node_count -
                        first_child.first_node;
      // The leftmost leaf's members take the duty: one failover rule (leaf
      // membership order) covers every tier, and a node's duties follow it
      // up the tree.
      zone.candidates = first_child.candidates;
      next.push_back(zone.id);
      layout.zones_.push_back(std::move(zone));
    }
    tier = std::move(next);
    ++tier_index;
  }
  layout.root_ = tier.front();
  return layout;
}

void ZoneRollup::update_origin(std::uint32_t origin,
                               const net::MonitorBatch& batch, SimTime now) {
  OriginState& state = origins_[origin];
  state.last_update = now;
  for (const net::MonitorBatch::Entry& e : batch.entries) {
    if (e.id >= state.values.size()) {
      state.values.resize(e.id + 1, 0.0);
      state.sampled_ns.resize(e.id + 1, 0);
      state.valid.resize(e.id + 1, 0);
    }
    state.values[e.id] = e.value;
    state.sampled_ns[e.id] = e.sampled_ns;
    state.valid[e.id] = 1;
  }
}

void ZoneRollup::update_origin_sample(std::uint32_t origin, std::uint32_t id,
                                      double value, std::int64_t sampled_ns,
                                      SimTime now) {
  OriginState& state = origins_[origin];
  state.last_update = now;
  if (id >= state.values.size()) {
    state.values.resize(id + 1, 0.0);
    state.sampled_ns.resize(id + 1, 0);
    state.valid.resize(id + 1, 0);
  }
  state.values[id] = value;
  state.sampled_ns[id] = sampled_ns;
  state.valid[id] = 1;
}

void ZoneRollup::update_child(const net::AggregateBatch& batch, SimTime now) {
  ChildState& state = children_[batch.zone];
  state.last_update = now;
  state.batch = batch;
}

void ZoneRollup::forget_origin(std::uint32_t origin) {
  origins_.erase(origin);
}

void ZoneRollup::clear() {
  origins_.clear();
  children_.clear();
}

namespace {

using Agg = net::AggregateBatch;

/// Merges `top` (descending) with one more candidate, keeping at most k.
void push_top(std::vector<Agg::Top>& top, std::uint8_t k, std::uint32_t node,
              double value) {
  if (k == 0) return;
  auto pos = std::find_if(top.begin(), top.end(), [value](const Agg::Top& t) {
    return value > t.value;
  });
  if (pos == top.end() && top.size() >= k) return;
  top.insert(pos, Agg::Top{node, value});
  if (top.size() > k) top.pop_back();
}

}  // namespace

bool ZoneRollup::build(net::AggregateBatch& out, const RollupSpec& spec,
                       SimTime now, SimDuration horizon) const {
  const std::uint8_t k = std::min(spec.top_k, Agg::kMaxTopK);
  out.entries.clear();
  // Statistics a parent may emit: what the spec asks for, intersected with
  // what every fresh child actually carried.
  std::uint8_t flags = spec.flags();

  // Keyed by metric id so entries come out ascending.
  std::map<std::uint32_t, Agg::Entry> merged;

  for (const auto& [origin, state] : origins_) {
    if (now - state.last_update > horizon) continue;
    for (std::size_t id = 0; id < state.valid.size(); ++id) {
      if (state.valid[id] == 0) continue;
      const double value = state.values[id];
      auto [it, created] = merged.try_emplace(static_cast<std::uint32_t>(id));
      Agg::Entry& e = it->second;
      if (created) {
        e.id = static_cast<std::uint32_t>(id);
        e.min = std::numeric_limits<double>::infinity();
        e.max = -std::numeric_limits<double>::infinity();
      }
      ++e.count;
      e.sum += value;
      e.min = std::min(e.min, value);
      e.max = std::max(e.max, value);
      e.latest_ns = std::max(e.latest_ns, state.sampled_ns[id]);
      push_top(e.top, k, origin, value);
    }
  }

  for (const auto& [zone, state] : children_) {
    if (now - state.last_update > horizon) continue;
    flags &= static_cast<std::uint8_t>(state.batch.flags | ~Agg::kKnownFlags);
    for (const Agg::Entry& child : state.batch.entries) {
      auto [it, created] = merged.try_emplace(child.id);
      Agg::Entry& e = it->second;
      if (created) {
        e.id = child.id;
        e.min = std::numeric_limits<double>::infinity();
        e.max = -std::numeric_limits<double>::infinity();
      }
      e.count += child.count;
      e.sum += child.sum;
      e.min = std::min(e.min, child.min);
      e.max = std::max(e.max, child.max);
      e.latest_ns = std::max(e.latest_ns, child.latest_ns);
      for (const Agg::Top& t : child.top) push_top(e.top, k, t.node, t.value);
    }
  }

  if (merged.empty()) return false;
  out.flags = flags;
  out.entries.reserve(merged.size());
  for (auto& [id, entry] : merged) out.entries.push_back(std::move(entry));
  return true;
}

}  // namespace dproc::core
