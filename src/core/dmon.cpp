#include "dproc/core/dmon.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "dproc/net/wire.hpp"
#include "dproc/util/logging.hpp"

namespace dproc::core {

namespace {

constexpr std::uint8_t kOpMonitor = 1;
constexpr std::uint8_t kOpControl = 2;
constexpr std::uint8_t kOpMonitorBatch = 3;
constexpr std::uint8_t kOpInterest = 4;

// Fixed KECho frame header (channel, source, submit time, payload length):
// the extra wire bytes an interest-skipped member never receives, on top of
// the payload itself.
constexpr std::size_t kKechoHeaderBytes = 4 + 4 + 8 + 4;

net::MessagePtr encode_monitor_event(const std::vector<MetricSample>& samples) {
  net::ByteWriter w;
  w.u8(kOpMonitor);
  w.u32(static_cast<std::uint32_t>(samples.size()));
  for (const MetricSample& s : samples) {
    w.u32(s.id);
    w.f64(s.value);
    w.i64(s.sampled_at.ns());
  }
  return net::make_message(w.take());
}

net::MessagePtr encode_batch_event(const net::MonitorBatch& batch) {
  net::ByteWriter w;
  w.reserve(1 + batch.encoded_bytes());
  w.u8(kOpMonitorBatch);
  batch.encode(w);
  return net::make_message(w.take());
}

net::MessagePtr encode_control_event(net::NodeId target,
                                     const TuningConfig& config) {
  net::ByteWriter w;
  w.u8(kOpControl);
  w.u32(target);
  const std::vector<std::uint8_t> body = encode_tuning(config);
  w.u32(static_cast<std::uint32_t>(body.size()));
  auto message = std::make_shared<net::Message>();
  message->header = w.take();
  message->header.insert(message->header.end(), body.begin(), body.end());
  return message;
}

std::string render_value(const RemoteMetric& metric, SimTime now,
                         PeerState state) {
  if (!metric.valid) return "no data\n";
  std::ostringstream out;
  // age_s is measured from the publisher's sample time, so staleness readers
  // see the full data age (queueing + network latency included); recv_age_s
  // isolates how long ago the value arrived here.
  out << std::setprecision(12) << metric.value << "\n"
      << "sampled_at_s " << metric.sampled_at.sec() << "\n"
      << "age_s " << (now - metric.sampled_at).sec() << "\n"
      << "recv_age_s " << (now - metric.received_at).sec() << "\n";
  // Degradation marker only when degraded: healthy output is unchanged.
  if (state != PeerState::kLive) out << "state " << to_string(state) << "\n";
  return out.str();
}

}  // namespace

std::size_t group_by_range(const std::vector<MetricSample>& sorted,
                           const std::vector<MetricRange>& ranges,
                           std::vector<std::vector<MetricSample>>& groups) {
  groups.resize(ranges.size());
  for (std::vector<MetricSample>& group : groups) group.clear();
  std::size_t strays = 0;
  std::size_t cursor = 0;
  for (std::size_t gi = 0; gi < ranges.size(); ++gi) {
    const MetricRange& range = ranges[gi];
    // Ids below this range fit no earlier range either (both sides are
    // ascending): they are strays, not members of whichever group happens
    // to come next.
    while (cursor < sorted.size() && sorted[cursor].id < range.first) {
      ++strays;
      ++cursor;
    }
    while (cursor < sorted.size() &&
           sorted[cursor].id < range.first + range.count) {
      groups[gi].push_back(sorted[cursor]);
      ++cursor;
    }
  }
  strays += sorted.size() - cursor;  // beyond the last range
  return strays;
}

const char* to_string(PeerState state) {
  switch (state) {
    case PeerState::kLive:
      return "live";
    case PeerState::kStale:
      return "stale";
    case PeerState::kDead:
      return "dead";
  }
  return "?";
}

DMon::DMon(host::Host& host, net::Nic& nic, kecho::Node& kecho,
           procfs::ProcFs& procfs, DmonConfig config)
    : host_(host), nic_(nic), kecho_(kecho), procfs_(procfs),
      config_(std::move(config)),
      tm_polls_(host.telemetry().counter("dmon", "polls")),
      tm_events_submitted_(host.telemetry().counter("dmon", "events_submitted")),
      tm_events_received_(host.telemetry().counter("dmon", "events_received")),
      tm_suppressed_(host.telemetry().counter("dmon", "suppressed")),
      tm_filter_compiles_(host.telemetry().counter("dmon", "filter_compiles")),
      tm_filter_insns_(host.telemetry().counter("ecode", "filter_insns")),
      tm_slo_violations_(host.telemetry().counter("trace", "slo_violations")),
      tm_collect_errors_(host.telemetry().counter("dmon", "collect_errors")),
      tm_stray_samples_(host.telemetry().counter("dmon", "stray_samples")),
      tm_batch_submits_(host.telemetry().counter("dmon", "batch_submits")),
      tm_batch_samples_(host.telemetry().counter("dmon", "batch_samples")),
      tm_batch_delta_suppressed_(
          host.telemetry().counter("dmon", "batch_delta_suppressed")),
      tm_batch_keyframes_(host.telemetry().counter("dmon", "batch_keyframes")),
      tm_bytes_saved_(host.telemetry().counter("kecho", "bytes_saved")),
      tm_poll_us_(host.telemetry().latency("dmon", "poll_us")),
      tm_submit_us_(host.telemetry().latency("dmon", "submit_us")),
      tm_receive_us_(host.telemetry().latency("dmon", "receive_us")) {
  procfs_.mkdir("/proc/cluster");
  procfs_.register_file("/proc/dproc/telemetry",
                        [this] { return host_.telemetry().render(); });
  procfs_.register_file("/proc/dproc/trace", [this] {
    const telemetry::Registry& tm = host_.telemetry();
    std::ostringstream out;
    out << "tracing " << (tm.trace_enabled() ? "enabled" : "disabled") << "\n"
        << "hops " << tm.hop_count() << "/" << tm.hop_capacity()
        << " dropped " << tm.hops_dropped() << "\n"
        << "slo_violations " << tm_slo_violations_.value() << "\n";
    if (tm.hop_count() > 0) {
      const auto channels = kecho_.channels();
      out << telemetry::render_hop_breakdown(
          telemetry::hop_breakdown({&tm}),
          [&channels](std::uint32_t id) -> std::string {
            for (const auto& [cid, name] : channels) {
              if (cid == id) return name;
            }
            return {};
          });
    }
    return out.str();
  });
  procfs_.register_file("/proc/dproc/status", [this] {
    std::ostringstream out;
    out << "node " << nic_.node() << " (" << host_.name() << ")\n"
        << "poll_period " << to_string(config_.poll_period) << "\n"
        << "modules " << modules_.size() << "\n"
        << "metrics " << metric_table_.size() << "\n"
        << "last_submit_cost_us " << last_poll_.submit_cost.us() << "\n"
        << "last_receive_cost_us " << last_poll_.receive_cost.us() << "\n";
    if (config_.batch.enabled) {
      out << "batching on epsilon " << config_.batch.delta_epsilon
          << " keyframe_every " << config_.batch.keyframe_every
          << " interest " << (config_.batch.interest ? 1 : 0) << "\n"
          << "delta_suppressed " << delta_suppressed_total_ << "\n"
          << "interest_bytes_saved " << interest_bytes_saved_ << "\n";
    }
    if (collect_errors_ > 0) out << "collect_errors " << collect_errors_ << "\n";
    if (stray_samples_ > 0) out << "stray_samples " << stray_samples_ << "\n";
    if (!last_control_error_.empty()) {
      out << "last_control_error " << last_control_error_ << "\n";
    }
    if (tuning_) out << tuning_->describe();
    return out.str();
  });
  procfs_.register_file(
      "/proc/dproc/interest",
      [this] {
        std::ostringstream out;
        out << "local";
        if (local_interest_.empty()) out << " all";
        for (const std::string& name : local_interest_) out << " " << name;
        out << "\n";
        for (const auto& [node, set] : peer_interests_) {
          out << "peer " << node;
          for (const std::string& name : set) out << " " << name;
          out << "\n";
        }
        return out.str();
      },
      [this](const std::string& text) {
        std::istringstream in(text);
        std::vector<std::string> modules;
        std::string word;
        while (in >> word) {
          if (word == "all") return declare_interest({});
          modules.push_back(word);
        }
        return declare_interest(std::move(modules));
      });
  kecho_.add_membership_listener(
      [this](kecho::MemberEventKind kind, net::NodeId node) {
        on_membership(kind, node);
      });
  rebuild_tuning();
}

DMon::~DMon() { stop(); }

void DMon::charge(double cycles) {
  if (cycles <= 0) return;
  host_.cpu().consume_kernel_cycles(cycles);
}

void DMon::rebuild_tuning() {
  tuning_ = std::make_unique<PublisherTuning>(config_.poll_period, metric_ids_);
}

void DMon::register_module(std::unique_ptr<MonitoringModule> module) {
  ModuleEntry entry;
  entry.first_id = static_cast<MetricId>(metric_table_.size());
  std::vector<MetricDesc> descs = module->metrics();
  entry.metric_count = descs.size();
  entry.module = std::move(module);
  for (MetricDesc& desc : descs) {
    desc.id = static_cast<MetricId>(metric_table_.size());
    metric_ids_[desc.key] = desc.id;
    metric_table_.push_back(desc);
  }
  register_local_files(entry);
  // NET_MON additionally serves the per-connection table.
  if (auto* net_monitor = dynamic_cast<NetMonitor*>(entry.module.get())) {
    procfs_.register_file("/proc/net/connections", [net_monitor] {
      return net_monitor->render_connections();
    });
  }
  modules_.push_back(std::move(entry));
  const ModuleEntry& added = modules_.back();
  module_ranges_.push_back(MetricRange{added.first_id, added.metric_count});
  last_collected_.resize(metric_table_.size());
  last_published_.resize(metric_table_.size());
  rebuild_tuning();

  // Peers declared before this module gained metrics: create their files.
  for (auto& [node, peer] : peers_) {
    peer.metrics.resize(metric_table_.size());
    for (std::size_t i = entry.first_id; i < metric_table_.size(); ++i) {
      const MetricDesc& desc = metric_table_[i];
      const net::NodeId node_copy = node;
      const MetricId id = desc.id;
      procfs_.register_file(
          "/proc/cluster/" + peer.name + "/" + desc.path, [this, node_copy, id] {
            auto it = peers_.find(node_copy);
            if (it == peers_.end() || id >= it->second.metrics.size()) {
              return std::string{"no data\n"};
            }
            return render_value(it->second.metrics[id], host_.engine().now(),
                                state_of(it->second));
          });
    }
  }
}

void DMon::register_local_files(const ModuleEntry& entry) {
  for (std::size_t i = 0; i < entry.metric_count; ++i) {
    const MetricDesc& desc = metric_table_[entry.first_id + i];
    const MetricId id = desc.id;
    procfs_.register_file("/proc/" + desc.path, [this, id] {
      if (id >= last_collected_.size()) return std::string{"no data\n"};
      std::ostringstream out;
      out << std::setprecision(12) << last_collected_[id].value << "\n";
      return out.str();
    });
  }
}

void DMon::add_peer(net::NodeId node, const std::string& name) {
  auto [it, created] = peers_.try_emplace(node);
  Peer& peer = it->second;
  peer.name = name;
  peer.metrics.resize(metric_table_.size());
  if (created) peer.declared_at = host_.engine().now();
  for (const MetricDesc& desc : metric_table_) {
    const MetricId id = desc.id;
    procfs_.register_file(
        "/proc/cluster/" + name + "/" + desc.path, [this, node, id] {
          auto peer_it = peers_.find(node);
          if (peer_it == peers_.end() || id >= peer_it->second.metrics.size()) {
            return std::string{"no data\n"};
          }
          return render_value(peer_it->second.metrics[id],
                              host_.engine().now(), state_of(peer_it->second));
        });
  }
  procfs_.register_file("/proc/cluster/" + name + "/status", [this, node] {
    auto peer_it = peers_.find(node);
    if (peer_it == peers_.end()) return std::string{"state dead\n"};
    const Peer& p = peer_it->second;
    std::ostringstream out;
    out << "state " << to_string(state_of(p)) << "\n"
        << "has_data " << (p.has_data ? 1 : 0) << "\n"
        << "last_update_s " << p.last_update.sec() << "\n"
        << "age_s " << (host_.engine().now() - p.last_update).sec() << "\n";
    return out.str();
  });
  procfs_.register_file(
      "/proc/cluster/" + name + "/control",
      [name] {
        return "# write control commands for node " + name +
               ": period/threshold/differential/filter/clear\n";
      },
      [this, node](const std::string& text) {
        auto config = parse_control_commands(text);
        if (!config) return config.status();
        return send_tuning(node, config.value());
      });
}

void DMon::start() {
  if (started_) return;
  started_ = true;
  monitor_channel_ = &kecho_.join(config_.monitor_channel);
  monitor_channel_->set_handler(
      [this](const kecho::Event& event) { on_monitor_event(event); });
  control_channel_ = &kecho_.join(config_.control_channel);
  control_channel_->set_handler(
      [this](const kecho::Event& event) { on_control_event(event); });
  poll_timer_ = host_.engine().schedule_periodic(config_.poll_period,
                                                 [this] { poll(); });
}

void DMon::stop() {
  poll_timer_.cancel();
  started_ = false;
}

void DMon::restart() {
  stop();
  for (auto& [node, peer] : peers_) {
    std::fill(peer.metrics.begin(), peer.metrics.end(), RemoteMetric{});
    peer.declared_at = host_.engine().now();
    peer.last_update = SimTime{};
    peer.has_data = false;
    peer.dead = false;
    peer.slo_violated = false;
    peer.last_slo_violation = SimTime{};
  }
  start();
}

PeerState DMon::state_of(const Peer& peer) const {
  if (peer.dead) return PeerState::kDead;
  const SimDuration horizon =
      config_.poll_period * static_cast<double>(config_.stale_after_periods);
  const SimTime basis = peer.has_data ? peer.last_update : peer.declared_at;
  return host_.engine().now() - basis > horizon ? PeerState::kStale
                                                : PeerState::kLive;
}

std::optional<PeerHealth> DMon::peer_health(net::NodeId node) const {
  auto it = peers_.find(node);
  if (it == peers_.end()) return std::nullopt;
  const Peer& peer = it->second;
  return PeerHealth{state_of(peer), peer.last_update, peer.has_data,
                    feed_within_slo(node)};
}

bool DMon::feed_within_slo(net::NodeId node) const {
  auto it = peers_.find(node);
  if (it == peers_.end() || !it->second.slo_violated) return true;
  // Sticky for the staleness horizon: one violation distrusts the feed
  // until a horizon's worth of in-budget updates has passed.
  const SimDuration horizon =
      config_.poll_period * static_cast<double>(config_.stale_after_periods);
  return host_.engine().now() - it->second.last_slo_violation > horizon;
}

PeerState DMon::peer_state(net::NodeId node) const {
  auto health = peer_health(node);
  return health ? health->state : PeerState::kDead;
}

void DMon::on_membership(kecho::MemberEventKind kind, net::NodeId node) {
  if (kind == kecho::MemberEventKind::kJoined) {
    // The joiner may be a publisher that has never seen this node's
    // interest declaration (it joined after we declared, or it restarted
    // and lost its table): re-broadcast so late publishers converge.
    broadcast_interest();
  } else if (kind == kecho::MemberEventKind::kLeft) {
    // A confirmed departure forgets the peer's interest; an eviction does
    // not (it may be spurious, and a wrongly-narrowed feed is worse than a
    // few extra bytes to a dead node).
    peer_interests_.erase(node);
  }
  auto it = peers_.find(node);
  if (it == peers_.end()) return;
  switch (kind) {
    case kecho::MemberEventKind::kJoined:
      // A (re)joined peer gets a fresh grace window before going stale.
      it->second.dead = false;
      if (!it->second.has_data) it->second.declared_at = host_.engine().now();
      break;
    case kecho::MemberEventKind::kEvicted:
      it->second.dead = true;
      break;
    case kecho::MemberEventKind::kLeft:
      // Confirmed departure: purge the procfs subtree and forget the peer.
      (void)procfs_.remove("/proc/cluster/" + it->second.name);
      peers_.erase(it);
      break;
  }
}

std::optional<MetricId> DMon::metric_id(const std::string& key) const {
  auto it = metric_ids_.find(key);
  if (it == metric_ids_.end()) return std::nullopt;
  return it->second;
}

const RemoteMetric* DMon::remote_metric(net::NodeId node, MetricId id) const {
  auto it = peers_.find(node);
  if (it == peers_.end() || id >= it->second.metrics.size()) return nullptr;
  const RemoteMetric& metric = it->second.metrics[id];
  return metric.valid ? &metric : nullptr;
}

const RemoteMetric* DMon::remote_metric(net::NodeId node,
                                        const std::string& key) const {
  auto id = metric_id(key);
  return id ? remote_metric(node, *id) : nullptr;
}

Status DMon::apply_tuning(const TuningConfig& config) {
  charge(config_.overheads.control_apply_cycles);
  if (config.filter_source && !config.filter_source->empty()) {
    charge(config_.overheads.filter_compile_cycles_per_byte *
           static_cast<double>(config.filter_source->size()));
    tm_filter_compiles_.add();
  }
  // Module-internal sampling windows (e.g. CPU_MON's run-queue averaging
  // period) are applied before the publication tuning so a failed lookup
  // rejects the whole request atomically from the caller's perspective.
  for (const auto& [module_name, period] : config.module_periods) {
    bool found = false;
    for (ModuleEntry& entry : modules_) {
      if (entry.module->name() == module_name) {
        entry.module->set_period(period);
        found = true;
        break;
      }
    }
    if (!found) {
      Status status = Status::not_found("unknown module '" + module_name + "'");
      last_control_error_ = status.to_string();
      return status;
    }
  }
  Status status = tuning_->apply(config);
  last_control_error_ = status.is_ok() ? std::string{} : status.to_string();
  return status;
}

Status DMon::send_tuning(net::NodeId target, const TuningConfig& config) {
  if (target == nic_.node()) return apply_tuning(config);
  // Metric names and filter sources follow cluster-wide conventions, so a
  // bad parameter or a filter that cannot compile is caught here and the
  // error surfaced to the writer instead of dying silently at the remote
  // publisher. (Module names stay remote-validated: module sets are
  // per-node.)
  Status valid = tuning_->validate(config);
  if (!valid) {
    last_control_error_ = valid.to_string();
    return valid;
  }
  if (control_channel_ == nullptr || !control_channel_->ready()) {
    return Status::failed_precondition(
        "control channel not established yet");
  }
  const net::MessagePtr frame = encode_control_event(target, config);
  if (host_.telemetry().trace_enabled()) {
    control_channel_->submit(frame, begin_trace(control_channel_->id()));
  } else {
    control_channel_->submit(frame);
  }
  return Status::ok();
}

net::TraceContext DMon::begin_trace(kecho::ChannelId channel) {
  const std::int64_t now_ns = host_.engine().now().ns();
  net::TraceContext ctx;
  // Cluster-unique and deterministic: the high word is the origin node,
  // the low word a per-node sequence.
  ctx.trace_id = (static_cast<std::uint64_t>(nic_.node()) << 32) |
                 static_cast<std::uint64_t>(++trace_seq_);
  ctx.origin = nic_.node();
  ctx.hop = static_cast<std::uint8_t>(telemetry::HopStage::kPublish);
  ctx.publish_ns = now_ns;
  ctx.prev_hop_ns = now_ns;
  host_.telemetry().record_hop(telemetry::Hop{
      ctx.trace_id, ctx.origin, channel, telemetry::HopStage::kPublish, now_ns,
      0});
  return ctx;
}

void DMon::note_render(const kecho::Event& event,
                       const std::string& slo_channel, Peer* peer) {
  if (!event.trace.valid() || !host_.telemetry().trace_enabled()) return;
  const std::int64_t now_ns = host_.engine().now().ns();
  host_.telemetry().record_hop(telemetry::Hop{
      event.trace.trace_id, event.trace.origin, event.channel,
      telemetry::HopStage::kRender, now_ns,
      now_ns - event.trace.prev_hop_ns});
  // Staleness SLO watchdog: the end-to-end age of the sample at the moment
  // it becomes visible to consumers, against the channel's budget.
  const SimDuration budget = config_.trace.slo_for(slo_channel);
  if (budget <= SimDuration::zero()) return;
  const SimDuration age = SimTime{now_ns} - SimTime{event.trace.publish_ns};
  if (age <= budget) return;
  tm_slo_violations_.add();
  if (peer != nullptr) {
    peer->slo_violated = true;
    peer->last_slo_violation = SimTime{now_ns};
  }
  DPROC_DEBUG() << "dmon " << nic_.node() << ": trace " << event.trace.trace_id
                << " from node " << event.trace.origin << " exceeded "
                << slo_channel << " staleness budget (" << age.us()
                << " us > " << budget.us() << " us)";
}

void DMon::on_monitor_event(const kecho::Event& event) {
  net::ByteReader r{event.payload_header()};
  const std::uint8_t op = r.u8();
  if (op != kOpMonitor && op != kOpMonitorBatch) return;
  net::MonitorBatch batch;
  if (op == kOpMonitorBatch && !net::MonitorBatch::decode(r, batch)) {
    DPROC_WARN() << "dmon " << nic_.node() << ": malformed batch event from "
                 << event.source;
    return;
  }

  auto it = peers_.find(event.source);
  if (it == peers_.end()) {
    // Peer never declared: learn it from the fabric's name table.
    add_peer(event.source, nic_.fabric().node_name(event.source));
    it = peers_.find(event.source);
  }
  Peer& peer = it->second;
  // Any event is a sign of life: refresh the staleness clock and clear a
  // possibly spurious eviction.
  peer.last_update = host_.engine().now();
  peer.has_data = true;
  peer.dead = false;

  if (op == kOpMonitor) {
    const std::uint32_t count = r.u32();
    for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
      const MetricId id = r.u32();
      const double value = r.f64();
      const SimTime sampled{r.i64()};
      if (id < peer.metrics.size()) {
        peer.metrics[id] = RemoteMetric{value, sampled, host_.engine().now(),
                                        true, event.trace.trace_id};
      }
    }
  } else {
    for (const net::MonitorBatch::Entry& e : batch.entries) {
      if (e.id < peer.metrics.size()) {
        peer.metrics[e.id] =
            RemoteMetric{e.value, SimTime{e.sampled_ns}, host_.engine().now(),
                         true, event.trace.trace_id};
      }
    }
  }
  note_render(event, config_.monitor_channel, &peer);
  const double cycles = config_.overheads.procfs_update_cycles_per_event;
  charge(cycles);
  handler_cost_ += seconds(cycles / host_.cpu().config().clock_hz);
}

void DMon::on_control_event(const kecho::Event& event) {
  const std::span<const std::uint8_t> header = event.payload_header();
  net::ByteReader r{header};
  const std::uint8_t op = r.u8();
  if (op == kOpInterest) {
    on_interest_event(event, r);
    return;
  }
  if (op != kOpControl) return;
  const net::NodeId target = r.u32();
  if (target != nic_.node()) return;
  const std::uint32_t body_size = r.u32();
  if (!r.ok() || r.remaining() != body_size) {
    DPROC_WARN() << "dmon " << nic_.node() << ": malformed control event";
    return;
  }
  auto config = decode_tuning(header.subspan(header.size() - body_size));
  if (!config) {
    DPROC_WARN() << "dmon " << nic_.node()
                 << ": bad tuning payload: " << config.status().to_string();
    return;
  }
  const SimDuration before = host_.cpu().kernel_cpu_time();
  Status status = apply_tuning(config.value());
  handler_cost_ += host_.cpu().kernel_cpu_time() - before;
  // Applying a control event is its render hop: the retune became visible.
  note_render(event, config_.control_channel, nullptr);
  if (!status) {
    DPROC_WARN() << "dmon " << nic_.node()
                 << ": tuning from node " << event.source
                 << " rejected: " << status.to_string();
  }
}

void DMon::on_interest_event(const kecho::Event& event, net::ByteReader& r) {
  const std::uint32_t count = r.u32();
  std::vector<std::string> modules;
  for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
    modules.push_back(r.str());
  }
  if (!r.ok()) {
    DPROC_WARN() << "dmon " << nic_.node()
                 << ": malformed interest event from " << event.source;
    return;
  }
  std::sort(modules.begin(), modules.end());
  modules.erase(std::unique(modules.begin(), modules.end()), modules.end());
  if (modules.empty()) {
    // Empty set = interested in everything again.
    peer_interests_.erase(event.source);
  } else {
    peer_interests_[event.source] = std::move(modules);
  }
  // Storing the declaration is its render hop: it became effective.
  note_render(event, config_.control_channel, nullptr);
  const double cycles = config_.overheads.procfs_update_cycles_per_event;
  charge(cycles);
  handler_cost_ += seconds(cycles / host_.cpu().config().clock_hz);
}

Status DMon::declare_interest(std::vector<std::string> modules) {
  std::sort(modules.begin(), modules.end());
  modules.erase(std::unique(modules.begin(), modules.end()), modules.end());
  local_interest_ = std::move(modules);
  interest_declared_ = true;
  if (control_channel_ == nullptr || !control_channel_->ready()) {
    // Remembered anyway: the declaration goes out when membership events
    // fire after the channel comes up.
    return Status::failed_precondition("control channel not established yet");
  }
  broadcast_interest();
  return Status::ok();
}

void DMon::broadcast_interest() {
  if (!interest_declared_ || control_channel_ == nullptr ||
      !control_channel_->ready()) {
    return;
  }
  net::ByteWriter w;
  w.u8(kOpInterest);
  w.u32(static_cast<std::uint32_t>(local_interest_.size()));
  for (const std::string& name : local_interest_) w.str(name);
  const net::MessagePtr frame = net::make_message(w.take());
  if (host_.telemetry().trace_enabled()) {
    control_channel_->submit(frame, begin_trace(control_channel_->id()));
  } else {
    control_channel_->submit(frame);
  }
}

void DMon::note_strays(std::size_t count) {
  if (count == 0) return;
  stray_samples_ += count;
  tm_stray_samples_.add(count);
  if (!warned_strays_) {
    warned_strays_ = true;
    DPROC_WARN() << "dmon " << nic_.node() << ": dropped " << count
                 << " publish-ready sample(s) whose id fits no registered "
                    "module range (stale or unregistered metric id)";
  }
}

void DMon::submit_per_module(const std::vector<MetricSample>& sorted,
                             PollRecord& record) {
  const std::size_t strays =
      group_by_range(sorted, module_ranges_, groups_scratch_);
  note_strays(strays);
  for (const std::vector<MetricSample>& group : groups_scratch_) {
    if (group.empty()) continue;
    const net::MessagePtr frame = encode_monitor_event(group);
    if (host_.telemetry().trace_enabled()) {
      record.submit_cost +=
          monitor_channel_->submit(frame, begin_trace(monitor_channel_->id()));
    } else {
      record.submit_cost += monitor_channel_->submit(frame);
    }
    ++record.events_submitted;
    record.samples_published += group.size();
  }
}

void DMon::submit_batch(std::vector<MetricSample>& sorted, PollRecord& record) {
  // Strays cannot ride in a batch either: peers index their metric tables
  // by id, and a stale id would overwrite some other metric's slot there.
  std::size_t strays = 0;
  std::erase_if(sorted, [&](const MetricSample& s) {
    if (s.id < metric_table_.size()) return false;
    ++strays;
    return true;
  });
  note_strays(strays);

  const bool keyframe =
      config_.batch.keyframe_every <= 1 ||
      batch_seq_ %
              static_cast<std::uint64_t>(config_.batch.keyframe_every) ==
          0;
  ++batch_seq_;
  if (last_published_.size() < metric_table_.size()) {
    last_published_.resize(metric_table_.size());
  }

  net::MonitorBatch batch;
  batch.entries.reserve(sorted.size());
  for (const MetricSample& s : sorted) {
    if (!keyframe && config_.batch.delta_epsilon >= 0 &&
        last_published_[s.id].published &&
        std::abs(s.value - last_published_[s.id].value) <=
            config_.batch.delta_epsilon) {
      ++record.delta_suppressed;
      continue;
    }
    batch.entries.push_back(
        net::MonitorBatch::Entry{s.id, s.value, s.sampled_at.ns()});
  }
  delta_suppressed_total_ += record.delta_suppressed;
  tm_batch_delta_suppressed_.add(record.delta_suppressed);
  // A period where everything was suppressed sends no frame at all — same
  // as a period where the filter kept everything back.
  if (batch.entries.empty()) return;

  if (keyframe) batch.flags |= net::MonitorBatch::kFlagKeyframe;
  record.keyframe = keyframe;
  for (const net::MonitorBatch::Entry& e : batch.entries) {
    last_published_[e.id] = PublishedState{true, e.value};
  }
  record.samples_published = batch.entries.size();

  const net::MessagePtr full = encode_batch_event(batch);
  if (!config_.batch.interest || peer_interests_.empty()) {
    if (host_.telemetry().trace_enabled()) {
      record.submit_cost +=
          monitor_channel_->submit(full, begin_trace(monitor_channel_->id()));
    } else {
      record.submit_cost += monitor_channel_->submit(full);
    }
  } else {
    // Per-member payload selection: one filtered frame per distinct
    // interest set (members sharing a set share the encoding), the full
    // frame for members that never declared, nullptr (skip) for members
    // whose set matches nothing in this batch.
    std::vector<std::pair<const std::vector<std::string>*, net::MessagePtr>>
        cache;
    std::uint64_t saved = 0;
    auto interested = [this](const std::vector<std::string>& set,
                             MetricId id) {
      for (std::size_t mi = 0; mi < module_ranges_.size(); ++mi) {
        const MetricRange& range = module_ranges_[mi];
        if (id >= range.first && id < range.first + range.count) {
          return std::binary_search(set.begin(), set.end(),
                                    modules_[mi].module->name());
        }
      }
      return false;
    };
    auto select = [&](net::NodeId member) -> net::MessagePtr {
      auto it = peer_interests_.find(member);
      if (it == peer_interests_.end() || it->second.empty()) return full;
      net::MessagePtr frame;
      bool cached = false;
      for (const auto& [set, cached_frame] : cache) {
        if (*set == it->second) {
          frame = cached_frame;
          cached = true;
          break;
        }
      }
      if (!cached) {
        net::MonitorBatch filtered;
        filtered.flags = batch.flags;
        for (const net::MonitorBatch::Entry& e : batch.entries) {
          if (interested(it->second, e.id)) filtered.entries.push_back(e);
        }
        if (!filtered.entries.empty()) frame = encode_batch_event(filtered);
        cache.emplace_back(&it->second, frame);
      }
      if (frame == nullptr) {
        saved += full->size() + kKechoHeaderBytes;
      } else if (frame != full) {
        saved += full->size() - frame->size();
      }
      return frame;
    };
    if (host_.telemetry().trace_enabled()) {
      record.submit_cost += monitor_channel_->submit_to_each(
          select, begin_trace(monitor_channel_->id()));
    } else {
      record.submit_cost += monitor_channel_->submit_to_each(select);
    }
    interest_bytes_saved_ += saved;
    tm_bytes_saved_.add(saved);
  }
  ++record.events_submitted;
  tm_batch_submits_.add();
  tm_batch_samples_.add(batch.entries.size());
  if (keyframe) tm_batch_keyframes_.add();
}

PollRecord DMon::poll() {
  PollRecord record;
  const SimTime poll_start = host_.engine().now();
  const SimDuration kernel_before = host_.cpu().kernel_cpu_time();

  // --- receive phase: drain the channels, dispatching to the handlers ---
  handler_cost_ = SimDuration::zero();
  const kecho::PollStats rx = kecho_.poll();
  record.events_received = rx.events_delivered;
  record.receive_cost = rx.cpu_cost + handler_cost_;

  // --- collection phase: poll each registered module's callback ---------
  charge(config_.overheads.collect_cycles_per_module *
         static_cast<double>(modules_.size()));
  const SimTime now = host_.engine().now();
  std::vector<MetricSample> collected;
  collected.reserve(metric_table_.size());
  std::vector<MetricRange> dropped;
  for (ModuleEntry& entry : modules_) {
    const std::size_t before = collected.size();
    entry.module->collect(collected, now);
    if (collected.size() - before != entry.metric_count) {
      // A misbehaving module must not publish default-constructed zeros
      // under valid metric ids cluster-wide. The vector has to stay
      // id-dense (the tuning layer and the local procfs readers index it
      // by id), so backfill the range from the last good collection and
      // drop it from this period's publication below.
      DPROC_ERROR() << "module " << entry.module->name()
                    << " returned wrong sample count; dropping its samples "
                       "this period";
      ++collect_errors_;
      tm_collect_errors_.add();
      collected.resize(before + entry.metric_count);
      for (std::size_t i = 0; i < entry.metric_count; ++i) {
        const MetricId id = static_cast<MetricId>(entry.first_id + i);
        collected[before + i] =
            id < last_collected_.size() ? last_collected_[id] : MetricSample{};
      }
      dropped.push_back(MetricRange{entry.first_id, entry.metric_count});
    }
    for (std::size_t i = 0; i < entry.metric_count; ++i) {
      collected[before + i].id = static_cast<MetricId>(entry.first_id + i);
    }
  }
  last_collected_ = collected;
  for (const SampleObserver& observer : sample_observers_) {
    observer(collected, now);
  }

  // --- decide + submit ---------------------------------------------------
  Decision decision = tuning_->decide(collected, now);
  if (!dropped.empty()) {
    // Nothing from a dropped module goes on the wire this period.
    std::erase_if(decision.to_send, [&dropped](const MetricSample& s) {
      for (const MetricRange& range : dropped) {
        if (s.id >= range.first && s.id < range.first + range.count) {
          return true;
        }
      }
      return false;
    });
  }
  record.filter_instructions = decision.filter_instructions;
  tm_filter_insns_.add(decision.filter_instructions);
  // Samples collected but filtered out of this period's publication — the
  // data-volume reduction the tuning achieves.
  if (collected.size() > decision.to_send.size()) {
    tm_suppressed_.add(collected.size() - decision.to_send.size());
  }
  charge(config_.overheads.filter_exec_cycles_per_insn *
         static_cast<double>(decision.filter_instructions));

  if (monitor_channel_ != nullptr && monitor_channel_->ready() &&
      monitor_channel_->remote_member_count() > 0) {
    // Filters may emit metrics in any order; per-module grouping and batch
    // encoding need ascending ids.
    std::sort(decision.to_send.begin(), decision.to_send.end(),
              [](const MetricSample& a, const MetricSample& b) {
                return a.id < b.id;
              });
    if (config_.batch.enabled) {
      submit_batch(decision.to_send, record);
    } else {
      submit_per_module(decision.to_send, record);
    }
  }

  // --- indirect perturbation (cache pollution, deferred kernel work) ----
  const double collateral_events =
      static_cast<double>(record.events_submitted) *
          static_cast<double>(monitor_channel_ != nullptr
                                  ? monitor_channel_->remote_member_count()
                                  : 0) +
      static_cast<double>(record.events_received);
  charge(config_.overheads.collateral_cycles_per_event * collateral_events);

  submit_cost_us_.add(record.submit_cost.us());
  receive_cost_us_.add(record.receive_cost.us());
  last_poll_ = record;

  tm_polls_.add();
  tm_events_submitted_.add(record.events_submitted);
  tm_events_received_.add(record.events_received);
  tm_submit_us_.record(record.submit_cost);
  tm_receive_us_.record(record.receive_cost);
  // The whole poll runs at one instant of virtual time; its duration is the
  // kernel CPU time it charged, which is also the span's extent.
  const SimDuration poll_cost = host_.cpu().kernel_cpu_time() - kernel_before;
  tm_poll_us_.record(poll_cost);
  host_.telemetry().record_span("dmon", "poll", poll_start,
                                poll_start + poll_cost);
  return record;
}

}  // namespace dproc::core
