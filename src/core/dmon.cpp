#include "dproc/core/dmon.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "dproc/net/fabric.hpp"
#include "dproc/net/wire.hpp"
#include "dproc/util/logging.hpp"

namespace dproc::core {

namespace {

constexpr std::uint8_t kOpMonitor = 1;
constexpr std::uint8_t kOpControl = 2;
constexpr std::uint8_t kOpMonitorBatch = 3;
constexpr std::uint8_t kOpInterest = 4;
// Hierarchical overlay (wire only when HierarchyConfig::enabled):
constexpr std::uint8_t kOpAggregate = 5;     // zone roll-up, tier-up
constexpr std::uint8_t kOpDrillRequest = 6;  // drill subscription, tier-down
constexpr std::uint8_t kOpDrillData = 7;     // drilled raw batch, tier-up

// Fixed KECho frame header (channel, source, submit time, payload length):
// the extra wire bytes an interest-skipped member never receives, on top of
// the payload itself.
constexpr std::size_t kKechoHeaderBytes = 4 + 4 + 8 + 4;

net::MessagePtr encode_monitor_event(const std::vector<MetricSample>& samples) {
  net::ByteWriter w;
  w.u8(kOpMonitor);
  w.u32(static_cast<std::uint32_t>(samples.size()));
  for (const MetricSample& s : samples) {
    w.u32(s.id);
    w.f64(s.value);
    w.i64(s.sampled_at.ns());
  }
  return net::make_message(w.take());
}

net::MessagePtr encode_batch_event(const net::MonitorBatch& batch) {
  net::ByteWriter w;
  w.reserve(1 + batch.encoded_bytes());
  w.u8(kOpMonitorBatch);
  batch.encode(w);
  return net::make_message(w.take());
}

net::MessagePtr encode_aggregate_event(const net::AggregateBatch& batch) {
  net::ByteWriter w;
  w.reserve(1 + batch.encoded_bytes());
  w.u8(kOpAggregate);
  batch.encode(w);
  return net::make_message(w.take());
}

net::MessagePtr encode_drill_request(net::NodeId requester, net::NodeId target,
                                     bool enable, std::uint32_t ttl_periods) {
  net::ByteWriter w;
  w.u8(kOpDrillRequest);
  w.u32(requester);
  w.u32(target);
  w.u8(enable ? 1 : 0);
  w.u32(ttl_periods);
  return net::make_message(w.take());
}

net::MessagePtr encode_drill_data(net::NodeId origin,
                                  const net::MonitorBatch& batch) {
  net::ByteWriter w;
  w.reserve(1 + 4 + batch.encoded_bytes());
  w.u8(kOpDrillData);
  w.u32(origin);
  batch.encode(w);
  return net::make_message(w.take());
}

/// Renders one metric's roll-up from an AggregateBatch for procfs (the
/// zone-summary and cluster-rollup files).
std::string render_aggregate_entry(const net::AggregateBatch& batch,
                                   MetricId id, SimTime now, SimTime built_at,
                                   const net::Fabric* fabric) {
  const net::AggregateBatch::Entry* entry = nullptr;
  for (const net::AggregateBatch::Entry& e : batch.entries) {
    if (e.id == id) {
      entry = &e;
      break;
    }
  }
  if (entry == nullptr) return "no data\n";
  std::ostringstream out;
  out << std::setprecision(12);
  out << "count " << entry->count << "\n";
  if (batch.has(net::AggregateBatch::kFlagMean) && entry->count > 0) {
    out << "mean " << (entry->sum / static_cast<double>(entry->count)) << "\n";
  }
  if (batch.has(net::AggregateBatch::kFlagMin)) {
    out << "min " << entry->min << "\n";
  }
  if (batch.has(net::AggregateBatch::kFlagMax)) {
    out << "max " << entry->max << "\n";
  }
  out << "latest_age_s " << (now - SimTime{entry->latest_ns}).sec() << "\n"
      << "built_age_s " << (now - built_at).sec() << "\n";
  for (const net::AggregateBatch::Top& top : entry->top) {
    out << "top ";
    if (fabric != nullptr && top.node < fabric->node_count()) {
      out << fabric->node_name(top.node);
    } else {
      out << top.node;
    }
    out << " " << top.value << "\n";
  }
  return out.str();
}

net::MessagePtr encode_control_event(net::NodeId target,
                                     const TuningConfig& config) {
  net::ByteWriter w;
  w.u8(kOpControl);
  w.u32(target);
  const std::vector<std::uint8_t> body = encode_tuning(config);
  w.u32(static_cast<std::uint32_t>(body.size()));
  auto message = std::make_shared<net::Message>();
  message->header = w.take();
  message->header.insert(message->header.end(), body.begin(), body.end());
  return message;
}

std::string render_value(const RemoteMetric& metric, SimTime now,
                         PeerState state) {
  if (!metric.valid) return "no data\n";
  std::ostringstream out;
  // age_s is measured from the publisher's sample time, so staleness readers
  // see the full data age (queueing + network latency included); recv_age_s
  // isolates how long ago the value arrived here.
  out << std::setprecision(12) << metric.value << "\n"
      << "sampled_at_s " << metric.sampled_at.sec() << "\n"
      << "age_s " << (now - metric.sampled_at).sec() << "\n"
      << "recv_age_s " << (now - metric.received_at).sec() << "\n";
  // Degradation marker only when degraded: healthy output is unchanged.
  if (state != PeerState::kLive) out << "state " << to_string(state) << "\n";
  return out.str();
}

}  // namespace

std::size_t group_by_range(const std::vector<MetricSample>& sorted,
                           const std::vector<MetricRange>& ranges,
                           std::vector<std::vector<MetricSample>>& groups) {
  groups.resize(ranges.size());
  for (std::vector<MetricSample>& group : groups) group.clear();
  std::size_t strays = 0;
  std::size_t cursor = 0;
  for (std::size_t gi = 0; gi < ranges.size(); ++gi) {
    const MetricRange& range = ranges[gi];
    // Ids below this range fit no earlier range either (both sides are
    // ascending): they are strays, not members of whichever group happens
    // to come next.
    while (cursor < sorted.size() && sorted[cursor].id < range.first) {
      ++strays;
      ++cursor;
    }
    while (cursor < sorted.size() &&
           sorted[cursor].id < range.first + range.count) {
      groups[gi].push_back(sorted[cursor]);
      ++cursor;
    }
  }
  strays += sorted.size() - cursor;  // beyond the last range
  return strays;
}

const char* to_string(PeerState state) {
  switch (state) {
    case PeerState::kLive:
      return "live";
    case PeerState::kStale:
      return "stale";
    case PeerState::kDead:
      return "dead";
  }
  return "?";
}

DMon::DMon(host::Host& host, net::Nic& nic, kecho::Node& kecho,
           procfs::ProcFs& procfs, DmonConfig config)
    : host_(host), nic_(nic), kecho_(kecho), procfs_(procfs),
      config_(std::move(config)),
      tm_polls_(host.telemetry().counter("dmon", "polls")),
      tm_events_submitted_(host.telemetry().counter("dmon", "events_submitted")),
      tm_events_received_(host.telemetry().counter("dmon", "events_received")),
      tm_suppressed_(host.telemetry().counter("dmon", "suppressed")),
      tm_filter_compiles_(host.telemetry().counter("dmon", "filter_compiles")),
      tm_filter_insns_(host.telemetry().counter("ecode", "filter_insns")),
      tm_slo_violations_(host.telemetry().counter("trace", "slo_violations")),
      tm_collect_errors_(host.telemetry().counter("dmon", "collect_errors")),
      tm_stray_samples_(host.telemetry().counter("dmon", "stray_samples")),
      tm_batch_submits_(host.telemetry().counter("dmon", "batch_submits")),
      tm_batch_samples_(host.telemetry().counter("dmon", "batch_samples")),
      tm_batch_delta_suppressed_(
          host.telemetry().counter("dmon", "batch_delta_suppressed")),
      tm_batch_keyframes_(host.telemetry().counter("dmon", "batch_keyframes")),
      tm_bytes_saved_(host.telemetry().counter("kecho", "bytes_saved")),
      tm_adapt_rounds_(host.telemetry().counter("dmon", "adapt_rounds")),
      tm_adapt_changes_(host.telemetry().counter("dmon", "adapt_changes")),
      tm_adapt_overhead_(host.telemetry().gauge("dmon", "adapt_overhead")),
      tm_poll_us_(host.telemetry().latency("dmon", "poll_us")),
      tm_submit_us_(host.telemetry().latency("dmon", "submit_us")),
      tm_receive_us_(host.telemetry().latency("dmon", "receive_us")) {
  procfs_.mkdir("/proc/cluster");
  procfs_.register_file("/proc/dproc/telemetry",
                        [this] { return host_.telemetry().render(); });
  procfs_.register_file("/proc/dproc/trace", [this] {
    const telemetry::Registry& tm = host_.telemetry();
    std::ostringstream out;
    out << "tracing " << (tm.trace_enabled() ? "enabled" : "disabled") << "\n"
        << "hops " << tm.hop_count() << "/" << tm.hop_capacity()
        << " dropped " << tm.hops_dropped() << "\n"
        << "slo_violations " << tm_slo_violations_.value() << "\n";
    if (tm.hop_count() > 0) {
      const auto channels = kecho_.channels();
      out << telemetry::render_hop_breakdown(
          telemetry::hop_breakdown({&tm}),
          [&channels](std::uint32_t id) -> std::string {
            for (const auto& [cid, name] : channels) {
              if (cid == id) return name;
            }
            return {};
          });
    }
    return out.str();
  });
  procfs_.register_file("/proc/dproc/status", [this] {
    std::ostringstream out;
    out << "node " << nic_.node() << " (" << host_.name() << ")\n"
        << "poll_period " << to_string(config_.poll_period) << "\n"
        << "modules " << modules_.size() << "\n"
        << "metrics " << metric_table_.size() << "\n"
        << "last_submit_cost_us " << last_poll_.submit_cost.us() << "\n"
        << "last_receive_cost_us " << last_poll_.receive_cost.us() << "\n";
    if (config_.batch.enabled) {
      out << "batching on epsilon " << config_.batch.delta_epsilon
          << " keyframe_every " << config_.batch.keyframe_every
          << " interest " << (config_.batch.interest ? 1 : 0) << "\n"
          << "delta_suppressed " << delta_suppressed_total_ << "\n"
          << "interest_bytes_saved " << interest_bytes_saved_ << "\n";
    }
    if (collect_errors_ > 0) out << "collect_errors " << collect_errors_ << "\n";
    if (stray_samples_ > 0) out << "stray_samples " << stray_samples_ << "\n";
    if (!last_control_error_.empty()) {
      out << "last_control_error " << last_control_error_ << "\n";
    }
    if (tuning_) out << tuning_->describe();
    return out.str();
  });
  procfs_.register_file(
      "/proc/dproc/interest",
      [this] {
        std::ostringstream out;
        out << "local";
        if (local_interest_.empty()) out << " all";
        for (const std::string& name : local_interest_) out << " " << name;
        out << "\n";
        for (const auto& [node, set] : peer_interests_) {
          out << "peer " << node;
          for (const std::string& name : set) out << " " << name;
          out << "\n";
        }
        return out.str();
      },
      [this](const std::string& text) {
        std::istringstream in(text);
        std::vector<std::string> modules;
        std::string word;
        while (in >> word) {
          if (word == "all") return declare_interest({});
          modules.push_back(word);
        }
        return declare_interest(std::move(modules));
      });
  procfs_.register_file(
      "/proc/dproc/adapt",
      [this] {
        if (!adapter_) return std::string{"adaptation disabled\n"};
        return adapter_->describe();
      },
      [this](const std::string& text) {
        if (!adapter_) {
          return Status::failed_precondition("adaptation disabled");
        }
        // Knob language: `budget <fraction>` / `target <rate>`, one per
        // line, applied in order; the first bad line rejects the write.
        std::istringstream in(text);
        std::string line;
        while (std::getline(in, line)) {
          std::istringstream words(line);
          std::string command;
          if (!(words >> command) || command.starts_with('#')) continue;
          double value = 0.0;
          if (!(words >> value)) {
            return Status::invalid_argument(command + ": missing value");
          }
          Status status;
          if (command == "budget") {
            status = adapter_->set_budget(value);
          } else if (command == "target") {
            status = adapter_->set_target(value);
          } else {
            status = Status::invalid_argument("unknown adapt knob '" +
                                              command + "'");
          }
          if (!status) return status;
        }
        return Status::ok();
      });
  procfs_.register_file("/proc/dproc/flight", [this] {
    const telemetry::FlightRecorder& flight = host_.flight();
    std::ostringstream out;
    out << "recorder " << (flight.enabled() ? "enabled" : "disabled")
        << " capacity " << flight.capacity() << " retained " << flight.size()
        << " dropped " << flight.dropped() << "\n"
        << flight.render();
    return out.str();
  });
  if (config_.health.enabled) {
    health_ = std::make_unique<HealthEngine>(host_, &host_.flight(),
                                             config_.health);
    health_->set_node(nic_.node(), host_.name());
    procfs_.register_file("/proc/dproc/health",
                          [this] { return health_->render(); });
    procfs_.register_file("/proc/dproc/incidents",
                          [this] { return health_->render_incidents(); });
    // The cluster-wide view: this node's score plus every declared peer's
    // self-assessed score as received over the monitoring channel.
    procfs_.register_file("/proc/cluster/health", [this] {
      std::ostringstream out;
      out << "local " << host_.name() << " score " << health_->score()
          << " trusted " << (health_->trusted() ? 1 : 0) << "\n";
      for (const auto& [node, peer] : peers_) {
        out << "peer " << node << " " << peer.name << " score ";
        const RemoteMetric* m = remote_metric(node, "dproc_health_score");
        if (m == nullptr) {
          out << "- trusted -\n";
        } else {
          out << m->value << " trusted " << (peer_health_ok(node) ? 1 : 0)
              << "\n";
        }
      }
      return out.str();
    });
  }
  kecho_.add_membership_listener(
      [this](kecho::MemberEventKind kind, net::NodeId node) {
        on_membership(kind, node);
      });
  rebuild_tuning();
}

DMon::~DMon() { stop(); }

void DMon::charge(double cycles) {
  if (cycles <= 0) return;
  host_.cpu().consume_kernel_cycles(cycles);
}

void DMon::rebuild_tuning() {
  tuning_ = std::make_unique<PublisherTuning>(config_.poll_period, metric_ids_);
  tuning_->enable_sketch_builtins(config_.sketch.enabled);
  tuning_->set_sketch_host(sketch_bridge_.get());
}

void DMon::register_module(std::unique_ptr<MonitoringModule> module) {
  ModuleEntry entry;
  entry.first_id = static_cast<MetricId>(metric_table_.size());
  std::vector<MetricDesc> descs = module->metrics();
  entry.metric_count = descs.size();
  entry.module = std::move(module);
  for (MetricDesc& desc : descs) {
    desc.id = static_cast<MetricId>(metric_table_.size());
    metric_ids_[desc.key] = desc.id;
    metric_table_.push_back(desc);
  }
  register_local_files(entry);
  // NET_MON additionally serves the per-connection table.
  if (auto* net_monitor = dynamic_cast<NetMonitor*>(entry.module.get())) {
    procfs_.register_file("/proc/net/connections", [net_monitor] {
      return net_monitor->render_connections();
    });
  }
  // With sketch support on, the first TOP_K module's sketch becomes the
  // host deployed filters read; later ones are skmerge() auxiliaries.
  if (config_.sketch.enabled) {
    if (auto* topk = dynamic_cast<TopKMonitor*>(entry.module.get())) {
      if (sketch_bridge_ == nullptr) {
        sketch_bridge_ = std::make_unique<FilterSketchBridge>(topk->sketch());
      } else {
        sketch_bridge_->add_aux(topk->sketch());
      }
    }
  }
  modules_.push_back(std::move(entry));
  const ModuleEntry& added = modules_.back();
  module_ranges_.push_back(MetricRange{added.first_id, added.metric_count});
  last_collected_.resize(metric_table_.size());
  last_published_.resize(metric_table_.size());
  rebuild_tuning();

  // Peers declared before this module gained metrics: create their files.
  for (auto& [node, peer] : peers_) {
    peer.metrics.resize(metric_table_.size());
    for (std::size_t i = entry.first_id; i < metric_table_.size(); ++i) {
      const MetricDesc& desc = metric_table_[i];
      const net::NodeId node_copy = node;
      const MetricId id = desc.id;
      procfs_.register_file(
          "/proc/cluster/" + peer.name + "/" + desc.path, [this, node_copy, id] {
            auto it = peers_.find(node_copy);
            if (it == peers_.end() || id >= it->second.metrics.size()) {
              return std::string{"no data\n"};
            }
            return render_value(it->second.metrics[id], host_.engine().now(),
                                state_of(it->second));
          });
    }
  }
}

void DMon::register_local_files(const ModuleEntry& entry) {
  for (std::size_t i = 0; i < entry.metric_count; ++i) {
    const MetricDesc& desc = metric_table_[entry.first_id + i];
    const MetricId id = desc.id;
    procfs_.register_file("/proc/" + desc.path, [this, id] {
      if (id >= last_collected_.size()) return std::string{"no data\n"};
      std::ostringstream out;
      out << std::setprecision(12) << last_collected_[id].value << "\n";
      return out.str();
    });
  }
}

void DMon::add_peer(net::NodeId node, const std::string& name) {
  auto [it, created] = peers_.try_emplace(node);
  Peer& peer = it->second;
  peer.name = name;
  peer.metrics.resize(metric_table_.size());
  if (created) peer.declared_at = host_.engine().now();
  for (const MetricDesc& desc : metric_table_) {
    const MetricId id = desc.id;
    procfs_.register_file(
        "/proc/cluster/" + name + "/" + desc.path, [this, node, id] {
          auto peer_it = peers_.find(node);
          if (peer_it == peers_.end() || id >= peer_it->second.metrics.size()) {
            return std::string{"no data\n"};
          }
          return render_value(peer_it->second.metrics[id],
                              host_.engine().now(), state_of(peer_it->second));
        });
  }
  procfs_.register_file("/proc/cluster/" + name + "/status", [this, node] {
    auto peer_it = peers_.find(node);
    if (peer_it == peers_.end()) return std::string{"state dead\n"};
    const Peer& p = peer_it->second;
    std::ostringstream out;
    out << "state " << to_string(state_of(p)) << "\n"
        << "has_data " << (p.has_data ? 1 : 0) << "\n"
        << "last_update_s " << p.last_update.sec() << "\n"
        << "age_s " << (host_.engine().now() - p.last_update).sec() << "\n";
    return out.str();
  });
  procfs_.register_file(
      "/proc/cluster/" + name + "/control",
      [name] {
        return "# write control commands for node " + name +
               ": period/threshold/differential/fuel/filter/clear\n";
      },
      [this, node](const std::string& text) {
        auto config = parse_control_commands(text);
        if (!config) return config.status();
        return send_tuning(node, config.value());
      });
}

void DMon::start() {
  if (started_) return;
  started_ = true;
  if (config_.adapt.enabled && adapter_ == nullptr) {
    // Regions mirror the module ranges registered so far (the cluster
    // builder registers every module before start_dproc); modules added
    // later keep their static periods.
    adapter_ = std::make_unique<PeriodController>(config_.adapt,
                                                  tuning_->default_period());
    for (std::size_t i = 0; i < modules_.size(); ++i) {
      adapter_->add_region(modules_[i].module->name(),
                           module_ranges_[i].first, module_ranges_[i].count);
    }
  }
  if (config_.hierarchy.enabled && config_.hierarchy_layout != nullptr) {
    start_hierarchy();
  } else {
    monitor_channel_ = &kecho_.join(config_.monitor_channel);
    monitor_channel_->set_handler(
        [this](const kecho::Event& event) { on_monitor_event(event); });
    control_channel_ = &kecho_.join(config_.control_channel);
    control_channel_->set_handler(
        [this](const kecho::Event& event) { on_control_event(event); });
  }
  poll_timer_ = host_.engine().schedule_periodic(config_.poll_period,
                                                 [this] { poll(); });
}

void DMon::stop() {
  poll_timer_.cancel();
  started_ = false;
}

void DMon::restart() {
  stop();
  for (auto& [node, peer] : peers_) {
    std::fill(peer.metrics.begin(), peer.metrics.end(), RemoteMetric{});
    peer.declared_at = host_.engine().now();
    peer.last_update = SimTime{};
    peer.has_data = false;
    peer.dead = false;
    peer.slo_violated = false;
    peer.last_slo_violation = SimTime{};
    peer.last_state = PeerState::kLive;
  }
  // A rebooted monitor has no roll-up, drill or membership memory either;
  // the keyframed zone feeds and drill refreshes reconverge it.
  for (ZoneDuty& duty : duties_) {
    duty.rollup.clear();
    duty.drills.clear();
    duty.last_built_valid = false;
  }
  hier_dead_.clear();
  local_drills_.clear();
  summary_valid_ = false;
  // A rebooted controller has no rate memory; periods restart at base.
  if (adapter_) adapter_->reset();
  tuning_->clear_adaptive_periods();
  adapt_poll_count_ = 0;
  adapt_window_cost_ = SimDuration::zero();
  force_keyframe_ = false;
  start();
}

PeerState DMon::state_of(const Peer& peer) const {
  if (peer.dead) return PeerState::kDead;
  const SimDuration horizon =
      config_.poll_period * static_cast<double>(config_.stale_after_periods);
  const SimTime basis = peer.has_data ? peer.last_update : peer.declared_at;
  return host_.engine().now() - basis > horizon ? PeerState::kStale
                                                : PeerState::kLive;
}

std::optional<PeerHealth> DMon::peer_health(net::NodeId node) const {
  auto it = peers_.find(node);
  if (it == peers_.end()) return std::nullopt;
  const Peer& peer = it->second;
  return PeerHealth{state_of(peer), peer.last_update, peer.has_data,
                    feed_within_slo(node)};
}

bool DMon::feed_within_slo(net::NodeId node) const {
  auto it = peers_.find(node);
  if (it == peers_.end() || !it->second.slo_violated) return true;
  // Sticky for the staleness horizon: one violation distrusts the feed
  // until a horizon's worth of in-budget updates has passed.
  const SimDuration horizon =
      config_.poll_period * static_cast<double>(config_.stale_after_periods);
  return host_.engine().now() - it->second.last_slo_violation > horizon;
}

PeerState DMon::peer_state(net::NodeId node) const {
  auto health = peer_health(node);
  return health ? health->state : PeerState::kDead;
}

bool DMon::peer_health_ok(net::NodeId node) const {
  if (!health_) return true;
  if (!health_score_id_) {
    const auto id = metric_id("dproc_health_score");
    if (!id) return true;  // DPROC_MON not registered (yet)
    health_score_id_ = id;
  }
  const RemoteMetric* m = remote_metric(node, *health_score_id_);
  if (m == nullptr) return true;  // no score yet: absence is peer_state's job
  return m->value >= config_.health.trust_threshold;
}

void DMon::scan_peer_health(SimTime now) {
  telemetry::FlightRecorder& flight = host_.flight();
  const bool flight_on = flight.enabled();
  if (!flight_on && !health_) return;
  HealthSnapshot census;
  census.peers_total = peers_.size();
  for (auto& [node, peer] : peers_) {
    const PeerState state = state_of(peer);
    if (state == PeerState::kStale) ++census.peers_stale;
    if (state == PeerState::kDead) ++census.peers_dead;
    if (flight_on && state != peer.last_state) {
      const SimTime basis = peer.has_data ? peer.last_update : peer.declared_at;
      const auto age_ms =
          static_cast<std::uint64_t>((now - basis).ns() / 1'000'000);
      switch (state) {
        case PeerState::kLive:
          flight.record(telemetry::Severity::kInfo,
                        telemetry::FlightSubsystem::kDmon,
                        telemetry::FlightCode::kPeerLive, node);
          break;
        case PeerState::kStale:
          flight.record(telemetry::Severity::kWarn,
                        telemetry::FlightSubsystem::kDmon,
                        telemetry::FlightCode::kPeerStale, node, age_ms);
          break;
        case PeerState::kDead:
          flight.record(telemetry::Severity::kError,
                        telemetry::FlightSubsystem::kDmon,
                        telemetry::FlightCode::kPeerDead, node, age_ms);
          break;
      }
    }
    peer.last_state = state;
  }
  if (health_) {
    // The engine round is kernel work like any other per-poll bookkeeping.
    charge(config_.overheads.procfs_update_cycles_per_event);
    health_->on_poll(census, now);
  }
}

void DMon::on_membership(kecho::MemberEventKind kind, net::NodeId node) {
  if (hier_) {
    // The election's shared membership view: every candidate derives the
    // acting aggregator from the same events, so leaves, standbys and
    // parents converge on the same answer without a protocol.
    if (kind == kecho::MemberEventKind::kJoined) {
      hier_dead_.erase(node);
    } else {
      hier_dead_.insert(node);
      if (kind == kecho::MemberEventKind::kLeft) {
        // A confirmed departure's samples must not linger in the roll-up.
        for (ZoneDuty& duty : duties_) duty.rollup.forget_origin(node);
      }
    }
  }
  if (kind == kecho::MemberEventKind::kJoined) {
    // The joiner may be a publisher that has never seen this node's
    // interest declaration (it joined after we declared, or it restarted
    // and lost its table): re-broadcast so late publishers converge.
    broadcast_interest();
  } else if (kind == kecho::MemberEventKind::kLeft) {
    // A confirmed departure forgets the peer's interest; an eviction does
    // not (it may be spurious, and a wrongly-narrowed feed is worse than a
    // few extra bytes to a dead node).
    peer_interests_.erase(node);
  }
  auto it = peers_.find(node);
  if (it == peers_.end()) return;
  switch (kind) {
    case kecho::MemberEventKind::kJoined:
      // A (re)joined peer gets a fresh grace window before going stale.
      it->second.dead = false;
      if (!it->second.has_data) it->second.declared_at = host_.engine().now();
      break;
    case kecho::MemberEventKind::kEvicted:
      it->second.dead = true;
      break;
    case kecho::MemberEventKind::kLeft:
      // Confirmed departure: purge the procfs subtree and forget the peer.
      (void)procfs_.remove("/proc/cluster/" + it->second.name);
      peers_.erase(it);
      break;
  }
}

std::optional<MetricId> DMon::metric_id(const std::string& key) const {
  auto it = metric_ids_.find(key);
  if (it == metric_ids_.end()) return std::nullopt;
  return it->second;
}

const RemoteMetric* DMon::remote_metric(net::NodeId node, MetricId id) const {
  auto it = peers_.find(node);
  if (it == peers_.end() || id >= it->second.metrics.size()) return nullptr;
  const RemoteMetric& metric = it->second.metrics[id];
  return metric.valid ? &metric : nullptr;
}

const RemoteMetric* DMon::remote_metric(net::NodeId node,
                                        const std::string& key) const {
  auto id = metric_id(key);
  return id ? remote_metric(node, *id) : nullptr;
}

Status DMon::apply_tuning(const TuningConfig& config) {
  charge(config_.overheads.control_apply_cycles);
  // Module-internal sampling windows (e.g. CPU_MON's run-queue averaging
  // period): resolve and validate every target before touching any module,
  // so a request that half-fails leaves no window already rewritten — the
  // whole request applies or none of it does.
  std::vector<std::pair<MonitoringModule*, SimDuration>> window_updates;
  window_updates.reserve(config.module_periods.size());
  for (const auto& [module_name, period] : config.module_periods) {
    if (period <= SimDuration::zero()) {
      Status status =
          Status::invalid_argument("module window must be positive");
      last_control_error_ = status.to_string();
      return status;
    }
    MonitoringModule* target = nullptr;
    for (ModuleEntry& entry : modules_) {
      if (entry.module->name() == module_name) {
        target = entry.module.get();
        break;
      }
    }
    if (target == nullptr) {
      Status status = Status::not_found("unknown module '" + module_name + "'");
      last_control_error_ = status.to_string();
      return status;
    }
    window_updates.emplace_back(target, period);
  }
  const std::uint64_t compiles_before = tuning_->filter_compiles();
  Status status = tuning_->apply(config);
  // Compile cycles are charged only when the tuning actually compiled —
  // re-installing an unchanged source hits the compiled-program cache.
  if (tuning_->filter_compiles() > compiles_before && config.filter_source) {
    charge(config_.overheads.filter_compile_cycles_per_byte *
           static_cast<double>(config.filter_source->size()));
    tm_filter_compiles_.add();
  }
  last_control_error_ = status.is_ok() ? std::string{} : status.to_string();
  if (!status) return status;
  for (const auto& [module, period] : window_updates) {
    module->set_period(period);
  }
  // Any effective-period change invalidates delta-suppressed subscribers'
  // decode baselines (their next expected update may now be a slow period
  // away): force a keyframe so they re-anchor immediately. Filter-only or
  // threshold-only configs leave the cadence alone.
  if (config.clear || config.default_period || !config.metric_periods.empty() ||
      !config.module_periods.empty()) {
    force_keyframe_ = true;
  }
  return status;
}

Status DMon::send_tuning(net::NodeId target, const TuningConfig& config) {
  if (target == nic_.node()) return apply_tuning(config);
  // Metric names and filter sources follow cluster-wide conventions, so a
  // bad parameter or a filter that cannot compile is caught here and the
  // error surfaced to the writer instead of dying silently at the remote
  // publisher. (Module names stay remote-validated: module sets are
  // per-node.)
  Status valid = tuning_->validate(config);
  if (!valid) {
    last_control_error_ = valid.to_string();
    return valid;
  }
  if (control_channel_ == nullptr || !control_channel_->ready()) {
    return Status::failed_precondition(
        "control channel not established yet");
  }
  const net::MessagePtr frame = encode_control_event(target, config);
  if (host_.telemetry().trace_enabled()) {
    control_channel_->submit(frame, begin_trace(control_channel_->id()));
  } else {
    control_channel_->submit(frame);
  }
  return Status::ok();
}

net::TraceContext DMon::begin_trace(kecho::ChannelId channel) {
  const std::int64_t now_ns = host_.engine().now().ns();
  net::TraceContext ctx;
  // Cluster-unique and deterministic: the high word is the origin node,
  // the low word a per-node sequence.
  ctx.trace_id = (static_cast<std::uint64_t>(nic_.node()) << 32) |
                 static_cast<std::uint64_t>(++trace_seq_);
  ctx.origin = nic_.node();
  ctx.hop = static_cast<std::uint8_t>(telemetry::HopStage::kPublish);
  ctx.publish_ns = now_ns;
  ctx.prev_hop_ns = now_ns;
  host_.telemetry().record_hop(telemetry::Hop{
      ctx.trace_id, ctx.origin, channel, telemetry::HopStage::kPublish, now_ns,
      0});
  return ctx;
}

void DMon::note_render(const kecho::Event& event,
                       const std::string& slo_channel, Peer* peer) {
  if (!event.trace.valid() || !host_.telemetry().trace_enabled()) return;
  const std::int64_t now_ns = host_.engine().now().ns();
  host_.telemetry().record_hop(telemetry::Hop{
      event.trace.trace_id, event.trace.origin, event.channel,
      telemetry::HopStage::kRender, now_ns,
      now_ns - event.trace.prev_hop_ns});
  // Staleness SLO watchdog: the end-to-end age of the sample at the moment
  // it becomes visible to consumers, against the channel's budget.
  const SimDuration budget = config_.trace.slo_for(slo_channel);
  if (budget <= SimDuration::zero()) return;
  const SimDuration age = SimTime{now_ns} - SimTime{event.trace.publish_ns};
  if (age <= budget) return;
  tm_slo_violations_.add();
  host_.flight().record(telemetry::Severity::kWarn,
                        telemetry::FlightSubsystem::kDmon,
                        telemetry::FlightCode::kSloViolation,
                        event.trace.origin,
                        static_cast<std::uint64_t>(age.ns() / 1'000'000),
                        static_cast<std::uint64_t>(budget.ns() / 1'000'000), 0,
                        event.trace.trace_id);
  if (peer != nullptr) {
    peer->slo_violated = true;
    peer->last_slo_violation = SimTime{now_ns};
  }
  DPROC_DEBUG() << "dmon " << nic_.node() << ": trace " << event.trace.trace_id
                << " from node " << event.trace.origin << " exceeded "
                << slo_channel << " staleness budget (" << age.us()
                << " us > " << budget.us() << " us)";
}

DMon::Peer& DMon::ensure_peer(net::NodeId origin) {
  auto it = peers_.find(origin);
  if (it == peers_.end()) {
    // Peer never declared: learn it from the fabric's name table.
    add_peer(origin, nic_.fabric().node_name(origin));
    it = peers_.find(origin);
  }
  return it->second;
}

void DMon::apply_batch_to_peer(Peer& peer, const net::MonitorBatch& batch,
                               std::uint64_t trace_id) {
  const SimTime now = host_.engine().now();
  for (const net::MonitorBatch::Entry& e : batch.entries) {
    if (e.id < peer.metrics.size()) {
      peer.metrics[e.id] =
          RemoteMetric{e.value, SimTime{e.sampled_ns}, now, true, trace_id};
    }
  }
}

void DMon::on_monitor_event(const kecho::Event& event) {
  net::ByteReader r{event.payload_header()};
  const std::uint8_t op = r.u8();
  if (hier_ && op == kOpAggregate) {
    // The root summary arriving at a subscriber (or standby root
    // candidate, keeping its failover state warm).
    if (!net::AggregateBatch::decode(r, agg_rx_)) {
      DPROC_WARN() << "dmon " << nic_.node()
                   << ": malformed aggregate event from " << event.source;
      return;
    }
    summary_ = agg_rx_;
    summary_at_ = host_.engine().now();
    summary_valid_ = true;
    if (agg_rx_.tier < tm_tier_.size()) {
      tm_tier_[agg_rx_.tier].rx_events->add();
      tm_tier_[agg_rx_.tier].rx_bytes->add(event.payload_size());
    }
    note_render(event, config_.monitor_channel, nullptr);
    const double cycles = config_.overheads.procfs_update_cycles_per_event;
    charge(cycles);
    handler_cost_ += seconds(cycles / host_.cpu().config().clock_hz);
    return;
  }
  if (hier_ && op == kOpDrillRequest) {
    // Root intake of a subscriber's drill subscription.
    const net::NodeId requester = r.u32();
    const net::NodeId target = r.u32();
    const bool enable = r.u8() != 0;
    const std::uint32_t ttl = r.u32();
    if (!r.ok()) return;
    if (ZoneDuty* root = duty_of(config_.hierarchy_layout->root().id)) {
      const SimTime expiry =
          host_.engine().now() + config_.poll_period * static_cast<double>(ttl);
      apply_drill(*root, requester, target, enable, expiry);
    }
    return;
  }
  if (hier_ && op == kOpDrillData) {
    // Requester receipt: the drilled node's raw feed, unflattened from the
    // tree — apply it exactly like a direct monitoring batch.
    const net::NodeId origin = r.u32();
    if (!net::MonitorBatch::decode(r, rx_batch_) ||
        origin >= nic_.fabric().node_count()) {
      DPROC_WARN() << "dmon " << nic_.node()
                   << ": malformed drill data from " << event.source;
      return;
    }
    Peer& peer = ensure_peer(origin);
    peer.last_update = host_.engine().now();
    peer.has_data = true;
    peer.dead = false;
    apply_batch_to_peer(peer, rx_batch_, event.trace.trace_id);
    if (tm_hier_drill_data_ != nullptr) tm_hier_drill_data_->add();
    const double cycles = config_.overheads.procfs_update_cycles_per_event;
    charge(cycles);
    handler_cost_ += seconds(cycles / host_.cpu().config().clock_hz);
    return;
  }
  if (op != kOpMonitor && op != kOpMonitorBatch) return;
  if (op == kOpMonitorBatch && !net::MonitorBatch::decode(r, rx_batch_)) {
    DPROC_WARN() << "dmon " << nic_.node() << ": malformed batch event from "
                 << event.source;
    return;
  }

  Peer& peer = ensure_peer(event.source);
  // Any event is a sign of life: refresh the staleness clock and clear a
  // possibly spurious eviction.
  peer.last_update = host_.engine().now();
  peer.has_data = true;
  peer.dead = false;

  if (op == kOpMonitor) {
    const std::uint32_t count = r.u32();
    for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
      const MetricId id = r.u32();
      const double value = r.f64();
      const SimTime sampled{r.i64()};
      if (id < peer.metrics.size()) {
        peer.metrics[id] = RemoteMetric{value, sampled, host_.engine().now(),
                                        true, event.trace.trace_id};
      }
    }
  } else {
    apply_batch_to_peer(peer, rx_batch_, event.trace.trace_id);
  }
  note_render(event, config_.monitor_channel, &peer);
  const double cycles = config_.overheads.procfs_update_cycles_per_event;
  charge(cycles);
  handler_cost_ += seconds(cycles / host_.cpu().config().clock_hz);
}

void DMon::on_control_event(const kecho::Event& event) {
  const std::span<const std::uint8_t> header = event.payload_header();
  net::ByteReader r{header};
  const std::uint8_t op = r.u8();
  if (op == kOpInterest) {
    on_interest_event(event, r);
    return;
  }
  if (op != kOpControl) return;
  const net::NodeId target = r.u32();
  if (target != nic_.node()) return;
  const std::uint32_t body_size = r.u32();
  if (!r.ok() || r.remaining() != body_size) {
    DPROC_WARN() << "dmon " << nic_.node() << ": malformed control event";
    return;
  }
  auto config = decode_tuning(header.subspan(header.size() - body_size));
  if (!config) {
    DPROC_WARN() << "dmon " << nic_.node()
                 << ": bad tuning payload: " << config.status().to_string();
    return;
  }
  const SimDuration before = host_.cpu().kernel_cpu_time();
  Status status = apply_tuning(config.value());
  handler_cost_ += host_.cpu().kernel_cpu_time() - before;
  // Applying a control event is its render hop: the retune became visible.
  note_render(event, config_.control_channel, nullptr);
  if (!status) {
    DPROC_WARN() << "dmon " << nic_.node()
                 << ": tuning from node " << event.source
                 << " rejected: " << status.to_string();
  }
}

void DMon::on_interest_event(const kecho::Event& event, net::ByteReader& r) {
  const std::uint32_t count = r.u32();
  std::vector<std::string> modules;
  for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
    modules.push_back(r.str());
  }
  if (!r.ok()) {
    DPROC_WARN() << "dmon " << nic_.node()
                 << ": malformed interest event from " << event.source;
    return;
  }
  std::sort(modules.begin(), modules.end());
  modules.erase(std::unique(modules.begin(), modules.end()), modules.end());
  if (modules.empty()) {
    // Empty set = interested in everything again.
    peer_interests_.erase(event.source);
  } else {
    peer_interests_[event.source] = std::move(modules);
  }
  // Storing the declaration is its render hop: it became effective.
  note_render(event, config_.control_channel, nullptr);
  const double cycles = config_.overheads.procfs_update_cycles_per_event;
  charge(cycles);
  handler_cost_ += seconds(cycles / host_.cpu().config().clock_hz);
}

Status DMon::declare_interest(std::vector<std::string> modules) {
  std::sort(modules.begin(), modules.end());
  modules.erase(std::unique(modules.begin(), modules.end()), modules.end());
  local_interest_ = std::move(modules);
  interest_declared_ = true;
  if (control_channel_ == nullptr || !control_channel_->ready()) {
    // Remembered anyway: the declaration goes out when membership events
    // fire after the channel comes up.
    return Status::failed_precondition("control channel not established yet");
  }
  broadcast_interest();
  return Status::ok();
}

void DMon::broadcast_interest() {
  if (!interest_declared_ || control_channel_ == nullptr ||
      !control_channel_->ready()) {
    return;
  }
  net::ByteWriter w;
  w.u8(kOpInterest);
  w.u32(static_cast<std::uint32_t>(local_interest_.size()));
  for (const std::string& name : local_interest_) w.str(name);
  const net::MessagePtr frame = net::make_message(w.take());
  if (host_.telemetry().trace_enabled()) {
    control_channel_->submit(frame, begin_trace(control_channel_->id()));
  } else {
    control_channel_->submit(frame);
  }
}

void DMon::note_strays(std::size_t count) {
  if (count == 0) return;
  stray_samples_ += count;
  tm_stray_samples_.add(count);
  if (!warned_strays_) {
    warned_strays_ = true;
    DPROC_WARN() << "dmon " << nic_.node() << ": dropped " << count
                 << " publish-ready sample(s) whose id fits no registered "
                    "module range (stale or unregistered metric id)";
  }
}

void DMon::submit_per_module(const std::vector<MetricSample>& sorted,
                             PollRecord& record) {
  const std::size_t strays =
      group_by_range(sorted, module_ranges_, groups_scratch_);
  note_strays(strays);
  for (const std::vector<MetricSample>& group : groups_scratch_) {
    if (group.empty()) continue;
    const net::MessagePtr frame = encode_monitor_event(group);
    if (host_.telemetry().trace_enabled()) {
      record.submit_cost +=
          monitor_channel_->submit(frame, begin_trace(monitor_channel_->id()));
    } else {
      record.submit_cost += monitor_channel_->submit(frame);
    }
    ++record.events_submitted;
    record.samples_published += group.size();
  }
}

bool DMon::build_publish_batch(std::vector<MetricSample>& sorted,
                               PollRecord& record, net::MonitorBatch& batch) {
  // Strays cannot ride in a batch either: peers index their metric tables
  // by id, and a stale id would overwrite some other metric's slot there.
  std::size_t strays = 0;
  std::erase_if(sorted, [&](const MetricSample& s) {
    if (s.id < metric_table_.size()) return false;
    ++strays;
    return true;
  });
  note_strays(strays);

  // The hierarchy path calls this with batching off too (zone feeds are
  // always MonitorBatch frames); without BatchConfig every frame is a
  // keyframe and delta suppression stays inert.
  const bool keyframe =
      force_keyframe_ ||
      !config_.batch.enabled || config_.batch.keyframe_every <= 1 ||
      batch_seq_ %
              static_cast<std::uint64_t>(config_.batch.keyframe_every) ==
          0;
  ++batch_seq_;
  if (last_published_.size() < metric_table_.size()) {
    last_published_.resize(metric_table_.size());
  }

  batch.flags = 0;
  batch.entries.clear();
  batch.entries.reserve(sorted.size());
  for (const MetricSample& s : sorted) {
    if (!keyframe && config_.batch.delta_epsilon >= 0 &&
        last_published_[s.id].published &&
        std::abs(s.value - last_published_[s.id].value) <=
            config_.batch.delta_epsilon) {
      ++record.delta_suppressed;
      continue;
    }
    batch.entries.push_back(
        net::MonitorBatch::Entry{s.id, s.value, s.sampled_at.ns()});
  }
  delta_suppressed_total_ += record.delta_suppressed;
  tm_batch_delta_suppressed_.add(record.delta_suppressed);
  // A period where everything was suppressed sends no frame at all — same
  // as a period where the filter kept everything back.
  if (batch.entries.empty()) return false;

  // The pending force is satisfied only once a keyframe actually goes out;
  // an all-suppressed or empty period keeps it armed for the next frame.
  if (keyframe) force_keyframe_ = false;
  if (keyframe) batch.flags |= net::MonitorBatch::kFlagKeyframe;
  record.keyframe = keyframe;
  for (const net::MonitorBatch::Entry& e : batch.entries) {
    last_published_[e.id] = PublishedState{true, e.value};
  }
  record.samples_published = batch.entries.size();
  return true;
}

void DMon::submit_batch(std::vector<MetricSample>& sorted, PollRecord& record) {
  if (!build_publish_batch(sorted, record, batch_scratch_)) return;
  const net::MonitorBatch& batch = batch_scratch_;
  const net::MessagePtr full = encode_batch_event(batch);
  if (!config_.batch.interest || peer_interests_.empty()) {
    if (host_.telemetry().trace_enabled()) {
      record.submit_cost +=
          monitor_channel_->submit(full, begin_trace(monitor_channel_->id()));
    } else {
      record.submit_cost += monitor_channel_->submit(full);
    }
  } else {
    // Per-member payload selection: one filtered frame per distinct
    // interest set (members sharing a set share the encoding), the full
    // frame for members that never declared, nullptr (skip) for members
    // whose set matches nothing in this batch. The cache vector and the
    // filtered batch are persistent scratch — cleared here, capacity kept.
    auto& cache = interest_cache_;
    cache.clear();
    std::uint64_t saved = 0;
    auto interested = [this](const std::vector<std::string>& set,
                             MetricId id) {
      for (std::size_t mi = 0; mi < module_ranges_.size(); ++mi) {
        const MetricRange& range = module_ranges_[mi];
        if (id >= range.first && id < range.first + range.count) {
          return std::binary_search(set.begin(), set.end(),
                                    modules_[mi].module->name());
        }
      }
      return false;
    };
    auto select = [&](net::NodeId member) -> net::MessagePtr {
      auto it = peer_interests_.find(member);
      if (it == peer_interests_.end() || it->second.empty()) return full;
      net::MessagePtr frame;
      bool cached = false;
      for (const auto& [set, cached_frame] : cache) {
        if (*set == it->second) {
          frame = cached_frame;
          cached = true;
          break;
        }
      }
      if (!cached) {
        filtered_scratch_.flags = batch.flags;
        filtered_scratch_.entries.clear();
        for (const net::MonitorBatch::Entry& e : batch.entries) {
          if (interested(it->second, e.id)) {
            filtered_scratch_.entries.push_back(e);
          }
        }
        if (!filtered_scratch_.entries.empty()) {
          frame = encode_batch_event(filtered_scratch_);
        }
        cache.emplace_back(&it->second, frame);
      }
      if (frame == nullptr) {
        saved += full->size() + kKechoHeaderBytes;
      } else if (frame != full) {
        saved += full->size() - frame->size();
      }
      return frame;
    };
    if (host_.telemetry().trace_enabled()) {
      record.submit_cost += monitor_channel_->submit_to_each(
          select, begin_trace(monitor_channel_->id()));
    } else {
      record.submit_cost += monitor_channel_->submit_to_each(select);
    }
    interest_bytes_saved_ += saved;
    tm_bytes_saved_.add(saved);
  }
  ++record.events_submitted;
  tm_batch_submits_.add();
  tm_batch_samples_.add(batch.entries.size());
  if (record.keyframe) tm_batch_keyframes_.add();
}

// --- hierarchical aggregation overlay --------------------------------------

bool DMon::hier_alive(std::size_t node) const {
  return node == static_cast<std::size_t>(nic_.node()) ||
         hier_dead_.find(node) == hier_dead_.end();
}

std::optional<std::size_t> DMon::zone_acting(std::uint32_t zone_id) const {
  if (config_.hierarchy_layout == nullptr) return std::nullopt;
  const HierarchyLayout& layout = *config_.hierarchy_layout;
  if (zone_id >= layout.zones().size()) return std::nullopt;
  return layout.acting(layout.zone(zone_id),
                       [this](std::size_t node) { return hier_alive(node); });
}

DMon::ZoneDuty* DMon::duty_of(std::uint32_t zone_id) {
  for (ZoneDuty& duty : duties_) {
    if (duty.zone->id == zone_id) return &duty;
  }
  return nullptr;
}

kecho::Channel* DMon::join_zone_channel(std::uint32_t zone_id) {
  auto it = zone_channels_.find(zone_id);
  if (it != zone_channels_.end()) return it->second;
  const HierarchyZone& zone = config_.hierarchy_layout->zone(zone_id);
  kecho::Channel& channel =
      kecho_.join(config_.monitor_channel + "." + zone.name);
  channel.set_handler([this, zone_id](const kecho::Event& event) {
    on_zone_event(zone_id, event);
  });
  zone_channels_[zone_id] = &channel;
  return &channel;
}

void DMon::start_hierarchy() {
  const HierarchyLayout& layout = *config_.hierarchy_layout;
  const std::size_t self = nic_.node();
  if (self >= layout.node_count()) {
    // Outside the layout (a late-added node): fall back to the flat stack
    // rather than publishing into zones nobody aggregates.
    DPROC_WARN() << "dmon " << self
                 << ": node outside the hierarchy layout; running flat";
    monitor_channel_ = &kecho_.join(config_.monitor_channel);
    monitor_channel_->set_handler(
        [this](const kecho::Event& event) { on_monitor_event(event); });
    control_channel_ = &kecho_.join(config_.control_channel);
    control_channel_->set_handler(
        [this](const kecho::Event& event) { on_control_event(event); });
    return;
  }
  hier_ = true;
  leaf_zone_ = &layout.leaf_of(self);

  bool subscriber = !config_.hierarchy.subscribers.has_value();
  if (config_.hierarchy.subscribers) {
    for (const std::size_t node : *config_.hierarchy.subscribers) {
      if (node == self) {
        subscriber = true;
        break;
      }
    }
  }
  const std::vector<std::uint32_t> duty_ids = layout.duty_zones(self);
  bool root_candidate = false;
  for (const std::uint32_t zid : duty_ids) {
    if (zid == layout.root().id) root_candidate = true;
  }
  // Summary membership: subscribers (to read) and root candidates (to
  // publish and to take drill requests). The control channel stays
  // subscriber-scoped — zone traffic never rides it.
  if (subscriber || root_candidate) {
    monitor_channel_ = &kecho_.join(config_.monitor_channel);
    monitor_channel_->set_handler(
        [this](const kecho::Event& event) { on_monitor_event(event); });
  }
  if (subscriber) {
    control_channel_ = &kecho_.join(config_.control_channel);
    control_channel_->set_handler(
        [this](const kecho::Event& event) { on_control_event(event); });
  }

  duties_.clear();
  for (const std::uint32_t zid : duty_ids) {
    ZoneDuty duty;
    duty.zone = &layout.zone(zid);
    duty.channel = join_zone_channel(zid);
    duty.parent_channel = duty.zone->parent
                              ? join_zone_channel(*duty.zone->parent)
                              : monitor_channel_;
    duties_.push_back(std::move(duty));
  }

  tm_tier_.clear();
  tm_tier_.resize(layout.tiers());
  for (std::uint32_t tier = 0; tier < layout.tiers(); ++tier) {
    const std::string prefix = "t" + std::to_string(tier) + "_";
    telemetry::Registry& tm = host_.telemetry();
    tm_tier_[tier].tx_events = &tm.counter("hier", prefix + "tx_events");
    tm_tier_[tier].tx_bytes = &tm.counter("hier", prefix + "tx_bytes");
    tm_tier_[tier].rx_events = &tm.counter("hier", prefix + "rx_events");
    tm_tier_[tier].rx_bytes = &tm.counter("hier", prefix + "rx_bytes");
  }
  tm_hier_rollups_ = &host_.telemetry().counter("hier", "rollup_publishes");
  tm_hier_drill_req_ = &host_.telemetry().counter("hier", "drill_requests");
  tm_hier_drill_data_ = &host_.telemetry().counter("hier", "drill_data_frames");
  register_hier_files();
}

void DMon::register_hier_files() {
  if (hier_files_registered_) return;
  hier_files_registered_ = true;
  procfs_.register_file("/proc/dproc/hierarchy", [this]() mutable {
    std::ostringstream out;
    const HierarchyLayout& layout = *config_.hierarchy_layout;
    out << "zones " << layout.zones().size() << " tiers " << layout.tiers()
        << " zone_size " << config_.hierarchy.zone_size << " fanout "
        << config_.hierarchy.fanout << "\n"
        << "leaf " << (leaf_zone_ != nullptr ? leaf_zone_->name : "-") << "\n";
    for (const ZoneDuty& duty : duties_) {
      const auto act = zone_acting(duty.zone->id);
      out << "duty " << duty.zone->name << " acting ";
      if (act) {
        out << *act;
        if (*act == static_cast<std::size_t>(nic_.node())) out << " (self)";
      } else {
        out << "-";
      }
      out << " origins " << duty.rollup.origin_count() << " children "
          << duty.rollup.child_count() << " drills " << duty.drills.size()
          << "\n";
    }
    out << "summary " << (summary_valid_ ? "valid" : "none");
    if (summary_valid_) {
      out << " entries " << summary_.entries.size() << " age_s "
          << (host_.engine().now() - summary_at_).sec();
    }
    out << "\n";
    return out.str();
  });
  procfs_.register_file(
      "/proc/dproc/drilldown",
      [this] {
        std::ostringstream out;
        out << "local";
        for (const net::NodeId target : local_drills_) out << " " << target;
        out << "\n";
        for (const ZoneDuty& duty : duties_) {
          for (const auto& [target, requesters] : duty.drills) {
            out << duty.zone->name << " target " << target << " requesters "
                << requesters.size() << "\n";
          }
        }
        return out.str();
      },
      [this](const std::string& text) {
        std::istringstream in(text);
        unsigned long node = 0;
        std::string mode;
        if (!(in >> node)) {
          return Status::invalid_argument("usage: <node-id> [on|off]");
        }
        in >> mode;
        return drill_down(static_cast<net::NodeId>(node), mode != "off");
      });
  // Cluster-wide roll-up files at summary members. /proc/cluster/summary
  // belongs to the application-level ClusterAggregator; the overlay renders
  // under /proc/cluster/rollup.
  if (monitor_channel_ != nullptr) {
    for (const MetricDesc& desc : metric_table_) {
      const MetricId id = desc.id;
      procfs_.register_file("/proc/cluster/rollup/" + desc.path, [this, id] {
        if (!summary_valid_) return std::string{"no data\n"};
        return render_aggregate_entry(summary_, id, host_.engine().now(),
                                      summary_at_, &nic_.fabric());
      });
    }
  }
  // Zone summaries at every candidate (whichever candidate is acting, the
  // standbys' copies go stale rather than vanish).
  for (const ZoneDuty& duty : duties_) {
    const std::uint32_t zid = duty.zone->id;
    const std::string base = "/proc/cluster/zones/" + duty.zone->name + "/";
    for (const MetricDesc& desc : metric_table_) {
      const MetricId id = desc.id;
      procfs_.register_file(base + desc.path, [this, zid, id]() mutable {
        const ZoneDuty* duty = duty_of(zid);
        if (duty == nullptr || !duty->last_built_valid) {
          return std::string{"no data\n"};
        }
        return render_aggregate_entry(duty->last_built, id,
                                      host_.engine().now(),
                                      duty->last_built_at, &nic_.fabric());
      });
    }
  }
}

void DMon::on_zone_event(std::uint32_t zone_id, const kecho::Event& event) {
  net::ByteReader r{event.payload_header()};
  const std::uint8_t op = r.u8();
  const SimTime now = host_.engine().now();
  if (op == kOpMonitorBatch) {
    // A zone member's raw feed into its leaf aggregator.
    ZoneDuty* duty = duty_of(zone_id);
    if (duty == nullptr || duty->zone->tier != 0) return;
    if (!net::MonitorBatch::decode(r, rx_batch_)) {
      DPROC_WARN() << "dmon " << nic_.node()
                   << ": malformed zone batch from " << event.source;
      return;
    }
    duty->rollup.update_origin(event.source, rx_batch_, now);
    if (!tm_tier_.empty()) {
      tm_tier_[0].rx_events->add();
      tm_tier_[0].rx_bytes->add(event.payload_size());
    }
    // The aggregator's own procfs view of its zone mates stays live.
    Peer& peer = ensure_peer(event.source);
    peer.last_update = now;
    peer.has_data = true;
    peer.dead = false;
    apply_batch_to_peer(peer, rx_batch_, event.trace.trace_id);
    note_render(event, config_.monitor_channel, &peer);
    maybe_forward_drill(*duty, event.source, rx_batch_, nullptr);
    const double cycles = config_.overheads.procfs_update_cycles_per_event;
    charge(cycles);
    handler_cost_ += seconds(cycles / host_.cpu().config().clock_hz);
    return;
  }
  if (op == kOpAggregate) {
    // A child zone's roll-up on this (parent) zone's channel. Sibling
    // candidates overhear it too — only a candidate of the parent folds,
    // and only frames whose zone really is a child (the zone id doubles as
    // the overwrite key, so a re-elected child aggregator republishing the
    // same zone never double-counts).
    if (!net::AggregateBatch::decode(r, agg_rx_)) {
      DPROC_WARN() << "dmon " << nic_.node()
                   << ": malformed aggregate from " << event.source;
      return;
    }
    ZoneDuty* duty = duty_of(zone_id);
    if (duty == nullptr) return;
    const auto& zones = config_.hierarchy_layout->zones();
    if (agg_rx_.zone >= zones.size() ||
        zones[agg_rx_.zone].parent != zone_id) {
      return;
    }
    duty->rollup.update_child(agg_rx_, now);
    if (agg_rx_.tier < tm_tier_.size()) {
      tm_tier_[agg_rx_.tier].rx_events->add();
      tm_tier_[agg_rx_.tier].rx_bytes->add(event.payload_size());
    }
    const double cycles = config_.overheads.procfs_update_cycles_per_event;
    charge(cycles);
    handler_cost_ += seconds(cycles / host_.cpu().config().clock_hz);
    return;
  }
  if (op == kOpDrillRequest) {
    // Downward propagation: a request on channel(p) is for the duties
    // whose parent is p (the zone that forwarded it).
    const net::NodeId requester = r.u32();
    const net::NodeId target = r.u32();
    const bool enable = r.u8() != 0;
    const std::uint32_t ttl = r.u32();
    if (!r.ok()) return;
    const SimTime expiry =
        now + config_.poll_period * static_cast<double>(ttl);
    for (ZoneDuty& duty : duties_) {
      if (duty.zone->parent && *duty.zone->parent == zone_id) {
        apply_drill(duty, requester, target, enable, expiry);
      }
    }
    return;
  }
  if (op == kOpDrillData) {
    // Upward relay: we were addressed as the acting aggregator of this
    // zone. Validate, then pass the frame along the acting chain.
    const net::NodeId origin = r.u32();
    ZoneDuty* duty = duty_of(zone_id);
    if (duty == nullptr) return;
    if (!net::MonitorBatch::decode(r, rx_batch_)) {
      DPROC_WARN() << "dmon " << nic_.node()
                   << ": malformed drill relay from " << event.source;
      return;
    }
    send_drill_up(*duty, origin, encode_drill_data(origin, rx_batch_),
                  nullptr);
    return;
  }
}

void DMon::submit_hier(std::vector<MetricSample>& sorted, PollRecord& record) {
  if (leaf_zone_ == nullptr) return;
  const auto act = zone_acting(leaf_zone_->id);
  if (!act) return;
  const std::size_t self = nic_.node();
  const SimTime now = host_.engine().now();
  if (*act == self) {
    // This node is its own aggregator: fold locally, no loopback frame.
    if (!build_publish_batch(sorted, record, batch_scratch_)) return;
    ZoneDuty* duty = duty_of(leaf_zone_->id);
    duty->rollup.update_origin(static_cast<std::uint32_t>(self),
                               batch_scratch_, now);
    maybe_forward_drill(*duty, static_cast<net::NodeId>(self), batch_scratch_,
                        &record);
    return;
  }
  kecho::Channel* channel = zone_channels_.at(leaf_zone_->id);
  if (!channel->ready()) return;
  if (!build_publish_batch(sorted, record, batch_scratch_)) return;
  const net::MessagePtr frame = encode_batch_event(batch_scratch_);
  if (host_.telemetry().trace_enabled()) {
    record.submit_cost += channel->submit_to(
        static_cast<net::NodeId>(*act), frame, begin_trace(channel->id()));
  } else {
    record.submit_cost +=
        channel->submit_to(static_cast<net::NodeId>(*act), frame);
  }
  ++record.events_submitted;
  tm_batch_submits_.add();
  tm_batch_samples_.add(batch_scratch_.entries.size());
  if (record.keyframe) tm_batch_keyframes_.add();
  if (!tm_tier_.empty()) {
    tm_tier_[0].tx_events->add();
    tm_tier_[0].tx_bytes->add(frame->size());
  }
}

void DMon::publish_rollups(PollRecord& record) {
  const SimTime now = host_.engine().now();
  const SimDuration horizon =
      config_.poll_period * static_cast<double>(config_.stale_after_periods);
  const std::size_t self = nic_.node();
  for (ZoneDuty& duty : duties_) {
    const auto act = zone_acting(duty.zone->id);
    if (!act || *act != self) continue;
    const RollupSpec& spec = config_.hierarchy.rollup_for(duty.zone->name);
    if (!duty.rollup.build(agg_scratch_, spec, now, horizon)) continue;
    agg_scratch_.tier = static_cast<std::uint8_t>(duty.zone->tier);
    agg_scratch_.zone = duty.zone->id;
    duty.last_built = agg_scratch_;
    duty.last_built_at = now;
    duty.last_built_valid = true;
    if (tm_hier_rollups_ != nullptr) tm_hier_rollups_->add();
    if (duty.zone->parent) {
      // Fold into our own parent duty directly (a submit never loops back
      // to the sender); the wire copy keeps the other parent candidates'
      // standby state warm for failover.
      if (ZoneDuty* parent = duty_of(*duty.zone->parent)) {
        parent->rollup.update_child(agg_scratch_, now);
      }
    } else {
      summary_ = agg_scratch_;
      summary_at_ = now;
      summary_valid_ = true;
    }
    kecho::Channel* up = duty.parent_channel;
    if (up == nullptr || !up->ready() || up->remote_member_count() == 0) {
      continue;
    }
    const net::MessagePtr frame = encode_aggregate_event(agg_scratch_);
    if (host_.telemetry().trace_enabled()) {
      record.submit_cost += up->submit(frame, begin_trace(up->id()));
    } else {
      record.submit_cost += up->submit(frame);
    }
    ++record.events_submitted;
    if (duty.zone->tier < tm_tier_.size()) {
      tm_tier_[duty.zone->tier].tx_events->add();
      tm_tier_[duty.zone->tier].tx_bytes->add(frame->size());
    }
  }
}

void DMon::apply_drill(ZoneDuty& duty, net::NodeId requester,
                       net::NodeId target, bool enable, SimTime expiry) {
  if (!duty.zone->contains(target)) return;
  if (enable) {
    duty.drills[target][requester] = expiry;
  } else {
    auto it = duty.drills.find(target);
    if (it != duty.drills.end()) {
      it->second.erase(requester);
      if (it->second.empty()) duty.drills.erase(it);
    }
  }
  if (tm_hier_drill_req_ != nullptr) tm_hier_drill_req_->add();
  if (duty.zone->tier == 0) return;
  // The acting aggregator re-announces on the zone's own channel — a plain
  // submit reaching every child candidate, so the routing state survives
  // child failover — and applies directly to the child duties it holds
  // itself (its own submit never loops back).
  const auto act = zone_acting(duty.zone->id);
  if (!act || *act != static_cast<std::size_t>(nic_.node())) return;
  kecho::Channel* down = duty.channel;
  if (down != nullptr && down->ready() && down->remote_member_count() > 0) {
    const auto ttl = static_cast<std::uint32_t>(
        std::max(1, config_.hierarchy.drill_ttl_periods));
    down->submit(encode_drill_request(requester, target, enable, ttl));
  }
  for (ZoneDuty& child : duties_) {
    if (child.zone->parent && *child.zone->parent == duty.zone->id) {
      apply_drill(child, requester, target, enable, expiry);
    }
  }
}

void DMon::send_drill_request(net::NodeId target, bool enable) {
  const auto ttl = static_cast<std::uint32_t>(
      std::max(1, config_.hierarchy.drill_ttl_periods));
  if (monitor_channel_ != nullptr && monitor_channel_->ready() &&
      monitor_channel_->remote_member_count() > 0) {
    monitor_channel_->submit(
        encode_drill_request(nic_.node(), target, enable, ttl));
  }
  // Root candidates see their own announcements directly.
  if (ZoneDuty* root = duty_of(config_.hierarchy_layout->root().id)) {
    const SimTime expiry =
        host_.engine().now() + config_.poll_period * static_cast<double>(ttl);
    apply_drill(*root, nic_.node(), target, enable, expiry);
  }
}

Status DMon::drill_down(net::NodeId target, bool enable) {
  if (!hier_) {
    return Status::failed_precondition("hierarchy overlay not active");
  }
  if (monitor_channel_ == nullptr) {
    return Status::failed_precondition(
        "drill-down needs summary-channel membership (subscriber)");
  }
  if (target >= nic_.fabric().node_count()) {
    return Status::invalid_argument("drill target outside the cluster");
  }
  if (enable) {
    local_drills_.insert(target);
  } else {
    local_drills_.erase(target);
  }
  send_drill_request(target, enable);
  return Status::ok();
}

void DMon::send_drill_up(ZoneDuty& duty, net::NodeId origin,
                         const net::MessagePtr& frame, PollRecord* record) {
  const std::size_t self = nic_.node();
  if (!duty.zone->parent) {
    // Root: deliver to the live requesters over the summary channel.
    auto it = duty.drills.find(origin);
    if (it == duty.drills.end()) return;
    const SimTime now = host_.engine().now();
    auto& requesters = it->second;
    bool self_wants = false;
    for (auto rit = requesters.begin(); rit != requesters.end();) {
      if (rit->second < now) {
        rit = requesters.erase(rit);
        continue;
      }
      if (rit->first == static_cast<net::NodeId>(self)) self_wants = true;
      ++rit;
    }
    if (requesters.empty()) {
      duty.drills.erase(it);
      return;
    }
    if (self_wants) {
      // The acting root drilled the target itself: apply locally.
      net::ByteReader r{std::span<const std::uint8_t>{frame->header}};
      r.u8();
      r.u32();
      net::MonitorBatch batch;
      if (net::MonitorBatch::decode(r, batch)) {
        Peer& peer = ensure_peer(origin);
        peer.last_update = now;
        peer.has_data = true;
        peer.dead = false;
        apply_batch_to_peer(peer, batch, 0);
      }
    }
    if (monitor_channel_ != nullptr && monitor_channel_->ready()) {
      const auto& reqs = requesters;
      const SimDuration cost = monitor_channel_->submit_to_each(
          [&reqs, &frame](net::NodeId member) -> net::MessagePtr {
            return reqs.find(member) != reqs.end() ? frame : nullptr;
          });
      if (record != nullptr) {
        record->submit_cost += cost;
        ++record->events_submitted;
      }
    }
    if (tm_hier_drill_data_ != nullptr) tm_hier_drill_data_->add();
    return;
  }
  const auto act = zone_acting(*duty.zone->parent);
  if (!act) return;
  if (*act == self) {
    if (ZoneDuty* parent = duty_of(*duty.zone->parent)) {
      send_drill_up(*parent, origin, frame, record);
    }
    return;
  }
  kecho::Channel* up = duty.parent_channel;
  if (up == nullptr || !up->ready()) return;
  const SimDuration cost =
      up->submit_to(static_cast<net::NodeId>(*act), frame);
  if (record != nullptr) {
    record->submit_cost += cost;
    ++record->events_submitted;
  }
  if (tm_hier_drill_data_ != nullptr) tm_hier_drill_data_->add();
}

void DMon::maybe_forward_drill(ZoneDuty& leaf_duty, net::NodeId origin,
                               const net::MonitorBatch& batch,
                               PollRecord* record) {
  auto it = leaf_duty.drills.find(origin);
  if (it == leaf_duty.drills.end()) return;
  const SimTime now = host_.engine().now();
  bool live = false;
  for (const auto& [requester, expiry] : it->second) {
    if (expiry >= now) {
      live = true;
      break;
    }
  }
  if (!live) {
    leaf_duty.drills.erase(it);
    return;
  }
  send_drill_up(leaf_duty, origin, encode_drill_data(origin, batch), record);
}

void DMon::prune_drills(SimTime now) {
  for (ZoneDuty& duty : duties_) {
    for (auto it = duty.drills.begin(); it != duty.drills.end();) {
      auto& requesters = it->second;
      for (auto rit = requesters.begin(); rit != requesters.end();) {
        rit = rit->second < now ? requesters.erase(rit) : std::next(rit);
      }
      it = requesters.empty() ? duty.drills.erase(it) : std::next(it);
    }
  }
}

PollRecord DMon::poll() {
  PollRecord record;
  const SimTime poll_start = host_.engine().now();
  const SimDuration kernel_before = host_.cpu().kernel_cpu_time();

  // --- receive phase: drain the channels, dispatching to the handlers ---
  handler_cost_ = SimDuration::zero();
  const kecho::PollStats rx = kecho_.poll();
  record.events_received = rx.events_delivered;
  record.receive_cost = rx.cpu_cost + handler_cost_;

  // Liveness scan + health round: after the drain (so freshly delivered
  // updates count) and before collection (so DPROC_MON publishes this
  // poll's score, not the last one's). No-op with flight and health off.
  scan_peer_health(host_.engine().now());

  // --- collection phase: poll each registered module's callback ---------
  charge(config_.overheads.collect_cycles_per_module *
         static_cast<double>(modules_.size()));
  const SimTime now = host_.engine().now();
  std::vector<MetricSample> collected;
  collected.reserve(metric_table_.size());
  std::vector<MetricRange> dropped;
  for (ModuleEntry& entry : modules_) {
    const std::size_t before = collected.size();
    entry.module->collect(collected, now);
    if (collected.size() - before != entry.metric_count) {
      // A misbehaving module must not publish default-constructed zeros
      // under valid metric ids cluster-wide. The vector has to stay
      // id-dense (the tuning layer and the local procfs readers index it
      // by id), so backfill the range from the last good collection and
      // drop it from this period's publication below.
      DPROC_ERROR() << "module " << entry.module->name()
                    << " returned wrong sample count; dropping its samples "
                       "this period";
      ++collect_errors_;
      tm_collect_errors_.add();
      host_.flight().record(
          telemetry::Severity::kWarn, telemetry::FlightSubsystem::kDmon,
          telemetry::FlightCode::kCollectError,
          static_cast<std::uint64_t>(&entry - modules_.data()));
      collected.resize(before + entry.metric_count);
      for (std::size_t i = 0; i < entry.metric_count; ++i) {
        const MetricId id = static_cast<MetricId>(entry.first_id + i);
        collected[before + i] =
            id < last_collected_.size() ? last_collected_[id] : MetricSample{};
      }
      dropped.push_back(MetricRange{entry.first_id, entry.metric_count});
    }
    for (std::size_t i = 0; i < entry.metric_count; ++i) {
      collected[before + i].id = static_cast<MetricId>(entry.first_id + i);
    }
  }
  last_collected_ = collected;
  for (const SampleObserver& observer : sample_observers_) {
    observer(collected, now);
  }
  // Rate tracking runs against the pre-decision samples: the controller
  // must see what the metrics are doing even while slow periods keep them
  // off the wire.
  if (adapter_) adapter_->observe(collected, last_published_);

  // --- decide + submit ---------------------------------------------------
  Decision decision = tuning_->decide(collected, now);
  if (!dropped.empty()) {
    // Nothing from a dropped module goes on the wire this period.
    std::erase_if(decision.to_send, [&dropped](const MetricSample& s) {
      for (const MetricRange& range : dropped) {
        if (s.id >= range.first && s.id < range.first + range.count) {
          return true;
        }
      }
      return false;
    });
  }
  record.filter_instructions = decision.filter_instructions;
  tm_filter_insns_.add(decision.filter_instructions);
  // Samples collected but filtered out of this period's publication — the
  // data-volume reduction the tuning achieves.
  if (collected.size() > decision.to_send.size()) {
    tm_suppressed_.add(collected.size() - decision.to_send.size());
  }
  charge(config_.overheads.filter_exec_cycles_per_insn *
         static_cast<double>(decision.filter_instructions));

  if (hier_) {
    std::sort(decision.to_send.begin(), decision.to_send.end(),
              [](const MetricSample& a, const MetricSample& b) {
                return a.id < b.id;
              });
    submit_hier(decision.to_send, record);
    prune_drills(host_.engine().now());
    publish_rollups(record);
    // Requester side: re-announce active drills so they outlive aggregator
    // failover and age out at the aggregators when this node dies.
    for (const net::NodeId target : local_drills_) {
      send_drill_request(target, true);
    }
  } else if (monitor_channel_ != nullptr && monitor_channel_->ready() &&
             monitor_channel_->remote_member_count() > 0) {
    // Filters may emit metrics in any order; per-module grouping and batch
    // encoding need ascending ids.
    std::sort(decision.to_send.begin(), decision.to_send.end(),
              [](const MetricSample& a, const MetricSample& b) {
                return a.id < b.id;
              });
    if (config_.batch.enabled) {
      submit_batch(decision.to_send, record);
    } else {
      submit_per_module(decision.to_send, record);
    }
  }

  // --- indirect perturbation (cache pollution, deferred kernel work) ----
  // Under the overlay each submitted event reaches one member (the zone
  // aggregator) or a zone channel's few candidates, not the whole cluster.
  const double collateral_events =
      hier_ ? static_cast<double>(record.events_submitted) +
                  static_cast<double>(record.events_received)
            : static_cast<double>(record.events_submitted) *
                      static_cast<double>(
                          monitor_channel_ != nullptr
                              ? monitor_channel_->remote_member_count()
                              : 0) +
                  static_cast<double>(record.events_received);
  charge(config_.overheads.collateral_cycles_per_event * collateral_events);

  submit_cost_us_.add(record.submit_cost.us());
  receive_cost_us_.add(record.receive_cost.us());
  last_poll_ = record;

  tm_polls_.add();
  tm_events_submitted_.add(record.events_submitted);
  tm_events_received_.add(record.events_received);
  tm_submit_us_.record(record.submit_cost);
  tm_receive_us_.record(record.receive_cost);
  run_adaptation(kernel_before);
  // The whole poll runs at one instant of virtual time; its duration is the
  // kernel CPU time it charged, which is also the span's extent.
  const SimDuration poll_cost = host_.cpu().kernel_cpu_time() - kernel_before;
  tm_poll_us_.record(poll_cost);
  host_.telemetry().record_span("dmon", "poll", poll_start,
                                poll_start + poll_cost);
  return record;
}

void DMon::run_adaptation(SimDuration kernel_before) {
  if (!adapter_) return;
  const int every = std::max(config_.adapt.adapt_every_periods, 1);
  const bool boundary = adapt_poll_count_ + 1 >= every;
  // The controller's decision pass is kernel work; charging it before the
  // window cost is read keeps the measured overhead honest about the cost
  // of adaptation itself.
  if (boundary) charge(config_.overheads.control_apply_cycles);
  adapt_window_cost_ += host_.cpu().kernel_cpu_time() - kernel_before;
  if (!boundary) {
    ++adapt_poll_count_;
    return;
  }
  const double window_sec =
      static_cast<double>(every) * config_.poll_period.sec();
  const double overhead =
      window_sec > 0.0 ? adapt_window_cost_.sec() / window_sec : 0.0;
  adapt_poll_count_ = 0;
  adapt_window_cost_ = SimDuration::zero();

  const std::uint64_t clamps_before = adapter_->budget_clamps();
  const bool changed = adapter_->adapt(overhead);
  host_.flight().record(telemetry::Severity::kDebug,
                        telemetry::FlightSubsystem::kAdapt,
                        telemetry::FlightCode::kAdaptRound, adapter_->rounds(),
                        changed ? 1 : 0);
  if (adapter_->budget_clamps() > clamps_before) {
    host_.flight().record(telemetry::Severity::kWarn,
                          telemetry::FlightSubsystem::kAdapt,
                          telemetry::FlightCode::kAdaptClamp,
                          adapter_->budget_clamps() - clamps_before,
                          static_cast<std::uint64_t>(overhead * 1e6));
  }
  for (const PeriodController::Region& region : adapter_->regions()) {
    for (std::size_t i = 0; i < region.count; ++i) {
      tuning_->set_adaptive_period(static_cast<MetricId>(region.first + i),
                                   region.period);
    }
  }
  // An adaptive period move invalidates subscribers' delta baselines the
  // same way a control write does.
  if (changed) force_keyframe_ = true;
  tm_adapt_rounds_.add();
  if (changed) tm_adapt_changes_.add();
  tm_adapt_overhead_.set(overhead);
}

}  // namespace dproc::core
