#include "dproc/core/incident.hpp"

#include <algorithm>
#include <cstdint>
#include <set>
#include <sstream>

#include "dproc/sim/fault.hpp"

namespace dproc::core {

namespace {

using telemetry::FlightCode;
using telemetry::FlightEvent;
using telemetry::FlightSubsystem;

/// Dedup key: fault-injector ground truth is recorded on every host, so it
/// collapses cluster-wide; everything else per (node, event) — overlapping
/// ring snapshots from the same node's successive bundles collapse too.
std::string dedup_key(std::uint32_t node, const FlightEvent& e) {
  std::ostringstream key;
  if (e.subsystem == FlightSubsystem::kFault) {
    key << "F";
  } else {
    key << "N" << node;
  }
  key << "|" << e.ts_ns << "|" << static_cast<unsigned>(e.code) << "|"
      << e.args[0] << "|" << e.args[1] << "|" << e.args[2] << "|" << e.args[3]
      << "|" << e.trace_id;
  return key.str();
}

bool matches_symptom(const FlightEvent& fault, const FlightEvent& e) {
  const auto kind = static_cast<sim::FaultKind>(fault.args[0]);
  const std::uint64_t target = fault.args[1];
  const std::uint64_t mapped = fault.args[3];  // node behind a link fault
  const bool peer_degraded = e.code == FlightCode::kPeerStale ||
                             e.code == FlightCode::kPeerDead ||
                             e.code == FlightCode::kMemberEvict;
  switch (kind) {
    case sim::FaultKind::kNodeCrash:
      return peer_degraded && e.args[0] == target;
    case sim::FaultKind::kLinkDown:
    case sim::FaultKind::kLinkLossStart: {
      const bool degraded =
          peer_degraded || e.code == FlightCode::kSloViolation;
      if (!degraded) return false;
      // An access-link fault implicates the node behind it; a trunk fault
      // (no single node) accepts degradation of anyone.
      return mapped == UINT64_MAX || e.args[0] == mapped;
    }
    case sim::FaultKind::kRegistryDown:
      return e.code == FlightCode::kRegistryOutage;
    case sim::FaultKind::kRegistryLeaderKill:
      return e.code == FlightCode::kLeaderElected ||
             e.code == FlightCode::kLeaseExpired || peer_degraded;
    default:
      return false;
  }
}

bool is_disruptive(sim::FaultKind kind) {
  switch (kind) {
    case sim::FaultKind::kNodeCrash:
    case sim::FaultKind::kLinkDown:
    case sim::FaultKind::kLinkLossStart:
    case sim::FaultKind::kRegistryDown:
    case sim::FaultKind::kRegistryLeaderKill:
      return true;
    default:
      return false;
  }
}

void append_event_json(std::ostringstream& out, std::uint32_t node,
                       const FlightEvent& e) {
  out << "{\"node\": " << node << ", \"ts_ns\": " << e.ts_ns
      << ", \"severity\": \"" << telemetry::to_string(e.severity)
      << "\", \"subsystem\": \"" << telemetry::to_string(e.subsystem)
      << "\", \"code\": \"" << telemetry::to_string(e.code) << "\", \"args\": ["
      << e.args[0] << ", " << e.args[1] << ", " << e.args[2] << ", "
      << e.args[3] << "], \"trace_id\": " << e.trace_id << "}";
}

}  // namespace

std::string render_bundles(const std::vector<IncidentBundle>& bundles) {
  std::ostringstream out;
  for (const IncidentBundle& bundle : bundles) {
    out << "incident " << bundle.id << " node " << bundle.node << " "
        << (bundle.node_name.empty() ? "-" : bundle.node_name) << " opened_ns "
        << bundle.opened_ns << " trigger " << bundle.trigger << " score "
        << bundle.score << " symptoms " << bundle.symptoms << "\n";
    for (const auto& [series, values] : bundle.history) {
      out << "history " << series;
      for (const double v : values) out << " " << v;
      out << "\n";
    }
    for (const FlightEvent& e : bundle.events) {
      out << telemetry::render_event(e) << "\n";
    }
    out << "end\n";
  }
  return out.str();
}

bool parse_bundles(const std::string& text, std::vector<IncidentBundle>& out) {
  std::istringstream in(text);
  std::string line;
  bool open = false;
  IncidentBundle bundle;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream words(line);
    std::string tag;
    words >> tag;
    if (!open) {
      if (tag != "incident") continue;  // tolerate prose between bundles
      bundle = IncidentBundle{};
      std::string kw_node, kw_opened, kw_trigger, kw_score, kw_symptoms;
      if (!(words >> bundle.id >> kw_node >> bundle.node >> bundle.node_name >>
            kw_opened >> bundle.opened_ns >> kw_trigger >> bundle.trigger >>
            kw_score >> bundle.score >> kw_symptoms >> bundle.symptoms) ||
          kw_node != "node" || kw_opened != "opened_ns" ||
          kw_trigger != "trigger" || kw_score != "score" ||
          kw_symptoms != "symptoms") {
        return false;
      }
      if (bundle.node_name == "-") bundle.node_name.clear();
      open = true;
      continue;
    }
    if (tag == "end") {
      out.push_back(std::move(bundle));
      open = false;
      continue;
    }
    if (tag == "history") {
      std::string series;
      if (!(words >> series)) return false;
      std::vector<double> values;
      double v = 0.0;
      while (words >> v) values.push_back(v);
      bundle.history.emplace_back(std::move(series), std::move(values));
      continue;
    }
    if (tag == "flight") {
      FlightEvent event;
      if (!telemetry::parse_event(line, event)) return false;
      bundle.events.push_back(event);
      continue;
    }
    return false;  // unknown line inside a bundle
  }
  return !open;  // EOF inside a bundle is a truncated dump
}

std::vector<TimelineEntry> merge_timeline(
    const std::vector<IncidentBundle>& bundles) {
  std::vector<TimelineEntry> timeline;
  std::set<std::string> seen;
  for (const IncidentBundle& bundle : bundles) {
    for (const FlightEvent& e : bundle.events) {
      if (!seen.insert(dedup_key(bundle.node, e)).second) continue;
      timeline.push_back(TimelineEntry{bundle.node, e});
    }
  }
  std::stable_sort(timeline.begin(), timeline.end(),
                   [](const TimelineEntry& a, const TimelineEntry& b) {
                     if (a.event.ts_ns != b.event.ts_ns) {
                       return a.event.ts_ns < b.event.ts_ns;
                     }
                     if (a.node != b.node) return a.node < b.node;
                     return static_cast<unsigned>(a.event.code) <
                            static_cast<unsigned>(b.event.code);
                   });
  return timeline;
}

std::vector<FaultFinding> align_faults(
    const std::vector<TimelineEntry>& timeline) {
  std::vector<FaultFinding> findings;
  for (std::size_t i = 0; i < timeline.size(); ++i) {
    const FlightEvent& fault = timeline[i].event;
    if (fault.code != FlightCode::kFaultInjected) continue;
    FaultFinding finding;
    finding.fault = fault;
    finding.disruptive =
        is_disruptive(static_cast<sim::FaultKind>(fault.args[0]));
    if (!finding.disruptive) {
      finding.observed = true;  // heals need no symptom
      findings.push_back(std::move(finding));
      continue;
    }
    for (std::size_t j = i + 1; j < timeline.size(); ++j) {
      const TimelineEntry& entry = timeline[j];
      if (entry.event.subsystem == FlightSubsystem::kFault) continue;
      if (matches_symptom(fault, entry.event)) {
        finding.observed = true;
        finding.symptom_node = entry.node;
        finding.symptom = entry.event;
        break;
      }
    }
    findings.push_back(std::move(finding));
  }
  return findings;
}

bool faults_recovered(const std::vector<FaultFinding>& findings) {
  for (const FaultFinding& finding : findings) {
    if (finding.disruptive && !finding.observed) return false;
  }
  return true;
}

std::string timeline_json(const std::vector<TimelineEntry>& timeline,
                          const std::vector<FaultFinding>& findings) {
  std::ostringstream out;
  out << "{\n  \"recovered\": " << (faults_recovered(findings) ? "true" : "false")
      << ",\n  \"faults\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const FaultFinding& f = findings[i];
    out << "    {\"kind\": \""
        << sim::to_string(static_cast<sim::FaultKind>(f.fault.args[0]))
        << "\", \"at_ns\": " << f.fault.ts_ns
        << ", \"target\": " << f.fault.args[1] << ", \"disruptive\": "
        << (f.disruptive ? "true" : "false") << ", \"observed\": "
        << (f.observed ? "true" : "false");
    if (f.observed && f.disruptive) {
      out << ", \"first_symptom\": ";
      append_event_json(out, f.symptom_node, f.symptom);
    }
    out << "}" << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"events\": [\n";
  for (std::size_t i = 0; i < timeline.size(); ++i) {
    out << "    ";
    append_event_json(out, timeline[i].node, timeline[i].event);
    out << (i + 1 < timeline.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

}  // namespace dproc::core
