#include "dproc/core/sketch.hpp"

#include <algorithm>
#include <cassert>

namespace dproc::core {

namespace {

/// splitmix64: cheap, well-mixed, deterministic across platforms. Each
/// (seed, stage/row) pair yields an independent hash function.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t hash_key(std::int64_t key, std::uint64_t seed,
                       std::uint32_t lane) {
  return mix64(static_cast<std::uint64_t>(key) ^ mix64(seed + lane));
}

}  // namespace

// --- CountMinSketch --------------------------------------------------------

CountMinSketch::CountMinSketch(std::uint32_t rows, std::uint32_t cols,
                               std::uint64_t seed)
    : rows_(rows == 0 ? 1 : rows),
      cols_(cols == 0 ? 1 : cols),
      seed_(seed),
      counters_(static_cast<std::size_t>(rows_) * cols_, 0.0) {}

std::size_t CountMinSketch::cell(std::uint32_t row, std::int64_t key) const {
  return static_cast<std::size_t>(row) * cols_ +
         hash_key(key, seed_, row) % cols_;
}

void CountMinSketch::add(std::int64_t key, double weight) {
  for (std::uint32_t r = 0; r < rows_; ++r) counters_[cell(r, key)] += weight;
}

double CountMinSketch::estimate(std::int64_t key) const {
  double best = counters_[cell(0, key)];
  for (std::uint32_t r = 1; r < rows_; ++r) {
    best = std::min(best, counters_[cell(r, key)]);
  }
  return best;
}

void CountMinSketch::merge(const CountMinSketch& other) {
  assert(other.rows_ == rows_ && other.cols_ == cols_ && other.seed_ == seed_);
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += other.counters_[i];
  }
}

void CountMinSketch::clear() {
  std::fill(counters_.begin(), counters_.end(), 0.0);
}

// --- HashPipe --------------------------------------------------------------

HashPipe::HashPipe(const SketchParams& params)
    : params_(params),
      slots_(static_cast<std::size_t>(std::max(1u, params.stages)) *
             std::max(1u, params.stage_slots)),
      evicted_(params.cm_rows, params.cm_cols, params.seed ^ 0xe516ed) {
  params_.stages = std::max(1u, params_.stages);
  params_.stage_slots = std::max(1u, params_.stage_slots);
}

std::size_t HashPipe::slot_index(std::uint32_t stage, std::int64_t key) const {
  return static_cast<std::size_t>(stage) * params_.stage_slots +
         hash_key(key, params_.seed, stage) % params_.stage_slots;
}

void HashPipe::update(std::int64_t key, double weight) {
  if (key < 0 || weight <= 0.0) return;

  // Stage 0: always insert. If the slot holds a different key, the old
  // entry is displaced and carried down the pipeline.
  Entry carry{key, weight};
  {
    Entry& slot = slots_[slot_index(0, key)];
    if (slot.key == key) {
      slot.count += weight;
      return;
    }
    std::swap(slot, carry);
    if (carry.key < 0) return;  // displaced an empty slot: done
  }

  // Stages 1..d-1: keep the heavier of (slot, carry), carry the lighter.
  for (std::uint32_t stage = 1; stage < params_.stages; ++stage) {
    Entry& slot = slots_[slot_index(stage, carry.key)];
    if (slot.key == carry.key) {
      slot.count += carry.count;
      return;
    }
    if (slot.key < 0) {
      slot = carry;
      return;
    }
    if (slot.count < carry.count) std::swap(slot, carry);
  }

  // Fell off the pipeline: remember the evicted mass so estimate() can
  // still answer for this key.
  evicted_.add(carry.key, carry.count);
}

std::size_t HashPipe::top(std::size_t k, std::vector<Entry>& out) const {
  out.clear();
  if (k == 0) return 0;
  // The table is small (stages x stage_slots); a partial selection over it
  // per refresh is cheaper than maintaining a heap on the update path.
  for (const Entry& e : slots_) {
    if (e.key < 0) continue;
    const auto ranks_before = [&](const Entry& o) {
      return e.count > o.count || (e.count == o.count && e.key < o.key);
    };
    std::size_t pos = 0;
    while (pos < out.size() && !ranks_before(out[pos])) ++pos;
    if (pos == out.size()) {
      if (out.size() < k) out.push_back(e);
      continue;
    }
    if (out.size() < k) out.push_back(out.back());
    std::move_backward(out.begin() + static_cast<std::ptrdiff_t>(pos),
                       out.end() - 1, out.end());
    out[pos] = e;
  }
  return out.size();
}

double HashPipe::estimate(std::int64_t key) const {
  if (key < 0) return 0.0;
  double resident = 0.0;
  for (std::uint32_t stage = 0; stage < params_.stages; ++stage) {
    const Entry& slot = slots_[slot_index(stage, key)];
    if (slot.key == key) resident += slot.count;
  }
  return resident + evicted_.estimate(key);
}

std::size_t HashPipe::merge(const HashPipe& other) {
  assert(other.params_.stages == params_.stages &&
         other.params_.stage_slots == params_.stage_slots);
  std::size_t folded = 0;
  for (const Entry& e : other.slots_) {
    if (e.key < 0) continue;
    update(e.key, e.count);
    ++folded;
  }
  evicted_.merge(other.evicted_);
  return folded;
}

void HashPipe::clear() {
  std::fill(slots_.begin(), slots_.end(), Entry{});
  evicted_.clear();
}

// --- TopKSketch ------------------------------------------------------------

TopKSketch::TopKSketch(const SketchParams& params) : pipe_(params) {}

void TopKSketch::refresh_top(std::size_t k) {
  top_.reserve(k);
  pipe_.top(k, top_);
}

double TopKSketch::rank_count(std::size_t rank) const {
  return rank < top_.size() ? top_[rank].count : 0.0;
}

std::int64_t TopKSketch::rank_key(std::size_t rank) const {
  return rank < top_.size() ? top_[rank].key : -1;
}

void TopKSketch::clear() {
  pipe_.clear();
  top_.clear();
}

}  // namespace dproc::core
