#include "dproc/core/adapt.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace dproc::core {

namespace {
/// Floor for the normalization denominator so all-zero metrics (or the
/// first non-zero twitch of one) cannot divide by ~0 into a huge rate.
constexpr double kScaleFloor = 1e-9;
/// Cap on the budget clamp's per-round scale factor: one pathological
/// overhead sample (e.g. a partition-heal receive burst) must not fling
/// every period straight to max in a single round.
constexpr double kMaxClampFactor = 8.0;
}  // namespace

PeriodController::PeriodController(AdaptConfig config, SimDuration base_period)
    : config_(config), base_period_(base_period) {
  if (config_.min_period <= SimDuration::zero()) {
    config_.min_period = milliseconds(1.0);
  }
  if (config_.max_period < config_.min_period) {
    config_.max_period = config_.min_period;
  }
  base_period_ = std::clamp(base_period_, config_.min_period,
                            config_.max_period);
}

void PeriodController::add_region(std::string module, MetricId first,
                                  std::size_t count) {
  Region region;
  region.module = std::move(module);
  region.first = first;
  region.count = count;
  region.period = base_period_;
  regions_.push_back(std::move(region));
  const std::size_t need = first + count;
  if (metrics_.size() < need) metrics_.resize(need);
}

void PeriodController::observe(
    const std::vector<MetricSample>& collected,
    const std::vector<PublishedState>& last_published) {
  const double alpha = std::clamp(config_.ewma_alpha, 0.0, 1.0);
  for (const MetricSample& s : collected) {
    if (s.id >= metrics_.size()) continue;
    MetricState& m = metrics_[s.id];
    // Baseline: the cluster's current view of the metric when one exists
    // (the drift a slow period is accumulating), else our own previous
    // collection (the plain per-poll delta).
    double baseline;
    if (s.id < last_published.size() && last_published[s.id].published) {
      baseline = last_published[s.id].value;
    } else if (m.seen) {
      baseline = m.prev;
    } else {
      baseline = s.value;
    }
    const double delta = std::abs(s.value - baseline);
    const double magnitude = std::abs(s.value);
    m.scale = m.seen ? (1.0 - alpha) * m.scale + alpha * magnitude
                     : magnitude;
    const double norm = delta / std::max(m.scale, kScaleFloor);
    m.rate = m.seen ? (1.0 - alpha) * m.rate + alpha * norm : norm;
    m.prev = s.value;
    m.seen = true;
  }
}

bool PeriodController::adapt(double measured_overhead) {
  ++rounds_;
  last_overhead_ = measured_overhead;
  bool changed = false;

  // Accuracy pass: each region follows its hottest metric. Volatile regions
  // tighten toward min_period; regions quieter than half the target decay
  // toward slow keyframe-only publishing. The dead band in between keeps
  // borderline regions from oscillating every round.
  for (Region& region : regions_) {
    double score = 0.0;
    for (std::size_t i = 0; i < region.count; ++i) {
      const std::size_t id = region.first + i;
      if (id < metrics_.size()) score = std::max(score, metrics_[id].rate);
    }
    region.score = score;
    SimDuration next = region.period;
    if (score > config_.accuracy_target) {
      next = std::max(config_.min_period,
                      region.period * config_.tighten_factor);
      if (next != region.period) ++tightened_;
    } else if (score < config_.accuracy_target * 0.5) {
      next = std::min(config_.max_period, region.period * config_.relax_factor);
      if (next != region.period) ++relaxed_;
    }
    if (next != region.period) {
      region.period = next;
      changed = true;
    }
  }

  // Budget clamp, last so it outranks accuracy: publishing cost scales
  // roughly with publish rate, so scaling every period by overhead/budget
  // walks the total back under budget within a round or two.
  if (config_.overhead_budget > 0.0 &&
      measured_overhead > config_.overhead_budget) {
    const double factor = std::min(
        measured_overhead / config_.overhead_budget, kMaxClampFactor);
    for (Region& region : regions_) {
      const SimDuration next =
          std::min(config_.max_period, region.period * factor);
      if (next != region.period) {
        region.period = next;
        changed = true;
        ++clamps_;
      }
    }
  }
  return changed;
}

void PeriodController::reset() {
  for (Region& region : regions_) {
    region.period = base_period_;
    region.score = 0.0;
  }
  for (MetricState& m : metrics_) m = MetricState{};
  rounds_ = 0;
  tightened_ = 0;
  relaxed_ = 0;
  clamps_ = 0;
  last_overhead_ = 0.0;
}

double PeriodController::rate(MetricId id) const {
  return id < metrics_.size() ? metrics_[id].rate : 0.0;
}

const PeriodController::Region* PeriodController::region_of(
    MetricId id) const {
  for (const Region& region : regions_) {
    if (id >= region.first && id < region.first + region.count) {
      return &region;
    }
  }
  return nullptr;
}

Status PeriodController::set_budget(double budget) {
  if (!(budget > 0.0) || !std::isfinite(budget)) {
    return Status::invalid_argument("budget must be a positive fraction");
  }
  config_.overhead_budget = budget;
  return Status::ok();
}

Status PeriodController::set_target(double target) {
  if (!(target > 0.0) || !std::isfinite(target)) {
    return Status::invalid_argument("target must be a positive rate");
  }
  config_.accuracy_target = target;
  return Status::ok();
}

std::string PeriodController::describe() const {
  std::ostringstream out;
  out << std::setprecision(6);
  out << "budget " << config_.overhead_budget << " target "
      << config_.accuracy_target << " every " << config_.adapt_every_periods
      << " polls\n"
      << "last_overhead " << last_overhead_ << "\n"
      << "rounds " << rounds_ << " tightened " << tightened_ << " relaxed "
      << relaxed_ << " budget_clamps " << clamps_ << "\n";
  for (const Region& region : regions_) {
    out << "region " << region.module << " period "
        << to_string(region.period) << " score " << region.score << "\n";
  }
  return out.str();
}

}  // namespace dproc::core
