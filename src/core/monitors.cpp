#include "dproc/core/monitors.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <memory>
#include <sstream>

namespace dproc::core {

std::string to_filter_constant(const std::string& key) {
  std::string out = key;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return out;
}

// --- CPU_MON ---------------------------------------------------------------

CpuMonitor::CpuMonitor(host::Host& host, SimDuration window,
                       SimDuration sample_interval, double sample_cycles)
    : host_(host),
      window_(window),
      sample_interval_(sample_interval),
      sample_cycles_(sample_cycles) {
  max_samples_ = static_cast<std::size_t>(
                     seconds(3600.0) / sample_interval_) +  // hard cap: 1 h
                 1;
  // Jitter each wakeup by ±10%: strictly periodic sampling aliases against
  // periodic workloads (a 5 Hz stream processor observed at exactly 10 Hz
  // reads 0.5 busy regardless of its true utilization); the jitter makes
  // the run-queue average an unbiased estimator, like real timer slack.
  schedule_next_sample();
}

void CpuMonitor::schedule_next_sample() {
  const SimDuration delay =
      sample_interval_ * host_.rng().uniform(0.9, 1.1);
  timer_ = host_.engine().schedule_after(delay, [this] {
    // The kernel thread wakes, walks the task list, records the run-queue
    // length. Both the walk and the wakeup cost kernel cycles.
    host_.cpu().consume_kernel_cycles(sample_cycles_);
    samples_.emplace_back(host_.engine().now(),
                          static_cast<double>(host_.cpu().run_queue_length()));
    // Trim anything older than the largest window we may be asked about.
    const SimTime cutoff = host_.engine().now() - seconds(3600.0);
    while (samples_.size() > max_samples_ ||
           (!samples_.empty() && samples_.front().first < cutoff)) {
      samples_.erase(samples_.begin());
    }
    schedule_next_sample();
  });
}

CpuMonitor::~CpuMonitor() { timer_.cancel(); }

std::vector<MetricDesc> CpuMonitor::metrics() const {
  return {{0, "loadavg", "cpu/loadavg"}, {0, "cpu_util", "cpu/utilization"}};
}

double CpuMonitor::load_average() const {
  const SimTime cutoff = host_.engine().now() - window_;
  double sum = 0.0;
  std::size_t n = 0;
  for (auto it = samples_.rbegin(); it != samples_.rend(); ++it) {
    if (it->first < cutoff) break;
    sum += it->second;
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

void CpuMonitor::collect(std::vector<MetricSample>& out, SimTime now) {
  const auto& descs = metrics();
  out.push_back(sample(descs[0].id, load_average(), now));
  out.push_back(sample(descs[1].id, host_.cpu().utilization(), now));
}

// --- MEM_MON ---------------------------------------------------------------

std::vector<MetricDesc> MemMonitor::metrics() const {
  return {{0, "freemem", "mem/freemem"}, {0, "free_pages", "mem/free_pages"}};
}

void MemMonitor::collect(std::vector<MetricSample>& out, SimTime now) {
  out.push_back(sample(0, static_cast<double>(host_.memory().free_bytes()), now));
  out.push_back(sample(0, static_cast<double>(host_.memory().free_pages()), now));
}

// --- DISK_MON --------------------------------------------------------------

std::vector<MetricDesc> DiskMonitor::metrics() const {
  return {{0, "disk_reads", "disk/reads"},
          {0, "disk_writes", "disk/writes"},
          {0, "diskusage", "disk/sectors"}};
}

void DiskMonitor::collect(std::vector<MetricSample>& out, SimTime now) {
  const host::DiskCounters& counters = host_.disk().counters();
  if (!seeded_) {
    last_ = counters;
    last_at_ = now;
    seeded_ = true;
    out.push_back(sample(0, 0.0, now));
    out.push_back(sample(0, 0.0, now));
    out.push_back(sample(0, 0.0, now));
    return;
  }
  const double dt = std::max((now - last_at_).sec(), 1e-9);
  const double reads =
      static_cast<double>(counters.reads - last_.reads) / dt;
  const double writes =
      static_cast<double>(counters.writes - last_.writes) / dt;
  const double sectors =
      static_cast<double>((counters.sectors_read - last_.sectors_read) +
                          (counters.sectors_written - last_.sectors_written)) /
      dt;
  last_ = counters;
  last_at_ = now;
  out.push_back(sample(0, reads, now));
  out.push_back(sample(0, writes, now));
  out.push_back(sample(0, sectors, now));
}

// --- NET_MON ---------------------------------------------------------------

NetMonitor::NetMonitor(host::Host& host, net::Nic& nic,
                       double link_capacity_bps)
    : host_(host), nic_(nic), link_capacity_bps_(link_capacity_bps) {}

std::vector<MetricDesc> NetMonitor::metrics() const {
  return {{0, "net_in", "net/in_bps"},
          {0, "net_out", "net/out_bps"},
          {0, "net_avail", "net/available_bps"},
          {0, "rtt", "net/rtt_us"},
          {0, "retrans", "net/retransmissions"},
          {0, "udp_lost", "net/udp_lost"}};
}

void NetMonitor::collect(std::vector<MetricSample>& out, SimTime now) {
  const net::NicStats& stats = nic_.stats();

  double lost_rate = 0.0;
  if (seeded_) {
    const double dt = std::max((now - last_at_).sec(), 1e-9);
    in_bps_.add(static_cast<double>(stats.bytes_received - last_bytes_in_) *
                8.0 / dt);
    out_bps_.add(static_cast<double>(stats.bytes_sent - last_bytes_out_) *
                 8.0 / dt);
    lost_rate =
        static_cast<double>(stats.datagrams_lost - last_datagrams_lost_) / dt;
  }
  const double in_bps = in_bps_.value();
  const double out_bps = out_bps_.value();
  last_bytes_in_ = stats.bytes_received;
  last_bytes_out_ = stats.bytes_sent;
  last_datagrams_lost_ = stats.datagrams_lost;
  last_at_ = now;
  seeded_ = true;

  // Smoothed RTT averaged across live connections; retransmissions are the
  // cumulative count, matching a kernel's netstat counters.
  double rtt_sum = 0.0;
  std::uint64_t retrans = 0;
  std::size_t conns = 0;
  for (const net::TcpConnection* conn : nic_.tcp_connections()) {
    const net::TcpStats s = conn->stats();
    if (s.srtt_us > 0) {
      rtt_sum += s.srtt_us;
      ++conns;
    }
    retrans += s.retransmissions;
  }

  const double avail =
      std::max(0.0, link_capacity_bps_ - std::max(in_bps, out_bps));

  out.push_back(sample(0, in_bps, now));
  out.push_back(sample(0, out_bps, now));
  out.push_back(sample(0, avail, now));
  out.push_back(sample(0, conns ? rtt_sum / static_cast<double>(conns) : 0.0, now));
  out.push_back(sample(0, static_cast<double>(retrans), now));
  out.push_back(sample(0, lost_rate, now));
}

std::string NetMonitor::render_connections() const {
  std::ostringstream out;
  out << "flow  local  remote  srtt_us  retrans  in_flight  send_queue\n";
  for (const net::TcpConnection* conn : nic_.tcp_connections()) {
    const net::TcpStats s = conn->stats();
    out << conn->flow_id() << "  " << conn->local_node() << "  "
        << conn->remote_node() << "  " << s.srtt_us << "  "
        << s.retransmissions << "  " << s.in_flight_bytes << "  "
        << s.send_queue_bytes << "\n";
  }
  return out.str();
}

// --- PMC -------------------------------------------------------------------

PmcMonitor::PmcMonitor(host::Host& host, std::vector<std::string> counters)
    : host_(host), counters_(std::move(counters)) {}

std::vector<MetricDesc> PmcMonitor::metrics() const {
  std::vector<MetricDesc> descs;
  descs.reserve(counters_.size());
  for (const std::string& counter : counters_) {
    descs.push_back({0, counter, "pmc/" + counter});
  }
  return descs;
}

void PmcMonitor::collect(std::vector<MetricSample>& out, SimTime now) {
  for (const std::string& counter : counters_) {
    out.push_back(
        sample(0, static_cast<double>(host_.pmc().read(counter)), now));
  }
}

// --- BatteryMonitor -------------------------------------------------------

std::vector<MetricDesc> BatteryMonitor::metrics() const {
  return {{0, "battery_level", "power/battery_level"},
          {0, "battery_joules", "power/battery_joules"},
          {0, "power_watts", "power/watts"}};
}

void BatteryMonitor::collect(std::vector<MetricSample>& out, SimTime now) {
  out.push_back(sample(0, battery_.level(), now));
  out.push_back(sample(0, battery_.remaining_joules(), now));
  out.push_back(sample(0, battery_.watts(), now));
}

// --- DPROC_MON -------------------------------------------------------------

DprocMonitor::DprocMonitor(host::Host& host, bool with_health)
    : host_(host),
      with_health_(with_health),
      submits_(host.telemetry().counter("kecho", "submits")),
      receives_(host.telemetry().counter("kecho", "receives")),
      heartbeats_(host.telemetry().counter("kecho", "heartbeats")),
      suppressed_(host.telemetry().counter("dmon", "suppressed")),
      filter_insns_(host.telemetry().counter("ecode", "filter_insns")),
      net_drops_(host.telemetry().counter("net", "drops")),
      slo_violations_(host.telemetry().counter("trace", "slo_violations")),
      adapt_rounds_(host.telemetry().counter("dmon", "adapt_rounds")),
      adapt_changes_(host.telemetry().counter("dmon", "adapt_changes")),
      adapt_overhead_(host.telemetry().gauge("dmon", "adapt_overhead")),
      submit_us_(host.telemetry().latency("dmon", "submit_us")),
      receive_us_(host.telemetry().latency("dmon", "receive_us")),
      poll_us_(host.telemetry().latency("dmon", "poll_us")) {}

std::vector<MetricDesc> DprocMonitor::metrics() const {
  std::vector<MetricDesc> descs =
         {{0, "dproc_submits", "dproc/submits"},
          {0, "dproc_receives", "dproc/receives"},
          {0, "dproc_submit_p50_us", "dproc/submit_p50_us"},
          {0, "dproc_submit_p99_us", "dproc/submit_p99_us"},
          {0, "dproc_receive_p50_us", "dproc/receive_p50_us"},
          {0, "dproc_receive_p99_us", "dproc/receive_p99_us"},
          {0, "dproc_poll_p99_us", "dproc/poll_p99_us"},
          {0, "dproc_filter_insns", "dproc/filter_insns"},
          {0, "dproc_suppressed", "dproc/suppressed"},
          {0, "dproc_heartbeats", "dproc/heartbeats"},
          {0, "dproc_net_drops", "dproc/net_drops"},
          {0, "dproc_slo_violations", "dproc/slo_violations"},
          {0, "dproc_adapt_rounds", "dproc/adapt_rounds"},
          {0, "dproc_adapt_changes", "dproc/adapt_changes"},
          {0, "dproc_adapt_overhead_pct", "dproc/adapt_overhead_pct"}};
  if (with_health_) {
    descs.push_back({0, "dproc_health_score", "dproc/health_score"});
    descs.push_back({0, "dproc_health_incidents", "dproc/health_incidents"});
  }
  return descs;
}

void DprocMonitor::collect(std::vector<MetricSample>& out, SimTime now) {
  out.push_back(sample(0, static_cast<double>(submits_.value()), now));
  out.push_back(sample(0, static_cast<double>(receives_.value()), now));
  out.push_back(sample(0, submit_us_.quantile_us(0.5), now));
  out.push_back(sample(0, submit_us_.quantile_us(0.99), now));
  out.push_back(sample(0, receive_us_.quantile_us(0.5), now));
  out.push_back(sample(0, receive_us_.quantile_us(0.99), now));
  out.push_back(sample(0, poll_us_.quantile_us(0.99), now));
  out.push_back(sample(0, static_cast<double>(filter_insns_.value()), now));
  out.push_back(sample(0, static_cast<double>(suppressed_.value()), now));
  out.push_back(sample(0, static_cast<double>(heartbeats_.value()), now));
  out.push_back(sample(0, static_cast<double>(net_drops_.value()), now));
  out.push_back(sample(0, static_cast<double>(slo_violations_.value()), now));
  out.push_back(sample(0, static_cast<double>(adapt_rounds_.value()), now));
  out.push_back(sample(0, static_cast<double>(adapt_changes_.value()), now));
  out.push_back(sample(0, adapt_overhead_.value() * 100.0, now));
  if (with_health_) {
    telemetry::Registry& tm = host_.telemetry();
    out.push_back(sample(0, tm.gauge("health", "score").value(), now));
    out.push_back(sample(
        0, static_cast<double>(tm.counter("health", "incidents").value()),
        now));
  }
}

// --- SyntheticMonitor --------------------------------------------------------

SyntheticMonitor::SyntheticMonitor(std::string name, std::size_t metric_count,
                                   ValueFn value_fn)
    : name_(std::move(name)),
      metric_count_(metric_count),
      value_fn_(std::move(value_fn)) {}

std::vector<MetricDesc> SyntheticMonitor::metrics() const {
  std::vector<MetricDesc> descs;
  descs.reserve(metric_count_);
  for (std::size_t i = 0; i < metric_count_; ++i) {
    const std::string key = name_ + std::to_string(i);
    descs.push_back({0, key, name_ + "/" + key});
  }
  return descs;
}

void SyntheticMonitor::collect(std::vector<MetricSample>& out, SimTime now) {
  for (std::size_t i = 0; i < metric_count_; ++i) {
    out.push_back(sample(0, value_fn_ ? value_fn_(i, now) : 0.0, now));
  }
}

// --- TopKMonitor -------------------------------------------------------------

TopKMonitor::TopKMonitor(std::string name, std::size_t k, ObserveFn observe,
                         SketchParams params)
    : name_(std::move(name)),
      k_(k == 0 ? 1 : k),
      observe_(std::move(observe)),
      sketch_(params) {}

std::vector<MetricDesc> TopKMonitor::metrics() const {
  std::vector<MetricDesc> descs;
  descs.reserve(2 * k_);
  for (std::size_t i = 0; i < k_; ++i) {
    const std::string rank = std::to_string(i);
    descs.push_back({0, name_ + "_top" + rank + "_key",
                     name_ + "/top" + rank + "/key"});
    descs.push_back({0, name_ + "_top" + rank + "_val",
                     name_ + "/top" + rank + "/val"});
  }
  return descs;
}

void TopKMonitor::collect(std::vector<MetricSample>& out, SimTime now) {
  obs_.clear();
  if (observe_) observe_(obs_, now);
  for (const auto& [key, weight] : obs_) sketch_.update(key, weight);
  sketch_.refresh_top(k_);
  for (std::size_t i = 0; i < k_; ++i) {
    out.push_back(sample(0, static_cast<double>(sketch_.rank_key(i)), now));
    out.push_back(sample(0, sketch_.rank_count(i), now));
  }
}

TopKMonitor::ObserveFn make_zipf_observer(std::size_t entity_count, double s,
                                          std::uint64_t seed,
                                          std::size_t draws_per_collect) {
  if (entity_count == 0) entity_count = 1;
  // Precompute the Zipf CDF once; draws binary-search it. Keys are
  // 1..entity_count (PID/flow-id style, key 0 avoided by convention).
  auto cdf = std::make_shared<std::vector<double>>();
  cdf->reserve(entity_count);
  double total = 0.0;
  for (std::size_t rank = 1; rank <= entity_count; ++rank) {
    total += 1.0 / std::pow(static_cast<double>(rank), s);
    cdf->push_back(total);
  }
  for (double& c : *cdf) c /= total;

  auto state = std::make_shared<std::uint64_t>(seed == 0 ? 0x9e3779b9ULL : seed);
  return [cdf, state, draws_per_collect](
             std::vector<std::pair<std::int64_t, double>>& out, SimTime) {
    for (std::size_t i = 0; i < draws_per_collect; ++i) {
      // xorshift64*: deterministic, decent uniformity, no <random> state.
      std::uint64_t x = *state;
      x ^= x >> 12;
      x ^= x << 25;
      x ^= x >> 27;
      *state = x;
      const double u =
          static_cast<double>((x * 0x2545f4914f6cdd1dULL) >> 11) /
          static_cast<double>(1ULL << 53);
      const auto it = std::lower_bound(cdf->begin(), cdf->end(), u);
      const auto rank = static_cast<std::int64_t>(it - cdf->begin());
      out.emplace_back(rank + 1, 1.0);
    }
  };
}

std::unique_ptr<TopKMonitor> make_topk_process_monitor(
    std::size_t k, std::size_t process_count, double zipf_s,
    std::uint64_t seed, SketchParams params) {
  return std::make_unique<TopKMonitor>(
      "topk_pid", k, make_zipf_observer(process_count, zipf_s, seed), params);
}

std::unique_ptr<TopKMonitor> make_topk_flow_monitor(std::size_t k,
                                                    std::size_t flow_count,
                                                    double zipf_s,
                                                    std::uint64_t seed,
                                                    SketchParams params) {
  return std::make_unique<TopKMonitor>(
      "topk_flow", k, make_zipf_observer(flow_count, zipf_s, seed), params);
}

}  // namespace dproc::core
