#include "dproc/core/history.hpp"

#include <iomanip>
#include <sstream>

#include "dproc/net/wire.hpp"

namespace dproc::core {

HistoryRecorder::HistoryRecorder(DMon& dmon, procfs::ProcFs& procfs,
                                 std::size_t depth)
    : dmon_(dmon), depth_(depth) {
  for (std::size_t i = 0; i < dmon_.metric_table().size(); ++i) {
    rings_.emplace_back(depth_);
  }
  dmon_.add_sample_observer(
      [this](const std::vector<MetricSample>& samples, SimTime) {
        on_samples(samples);
      });
  for (const MetricDesc& desc : dmon_.metric_table()) {
    const MetricId id = desc.id;
    procfs.register_file("/proc/history/" + desc.key, [this, id] {
      std::ostringstream out;
      out << std::setprecision(12);
      if (id < rings_.size()) {
        rings_[id].for_each([&](const HistoryPoint& point) {
          out << point.at.sec() << " " << point.value << "\n";
        });
      }
      return out.str();
    });
  }
}

void HistoryRecorder::on_samples(const std::vector<MetricSample>& samples) {
  // Modules registered after construction extend the table; grow lazily.
  while (rings_.size() < dmon_.metric_table().size()) {
    rings_.emplace_back(depth_);
  }
  for (const MetricSample& sample : samples) {
    if (sample.id < rings_.size()) {
      rings_[sample.id].push(HistoryPoint{sample.sampled_at, sample.value});
    }
  }
}

std::vector<HistoryPoint> HistoryRecorder::history(MetricId id) const {
  std::vector<HistoryPoint> points;
  if (id >= rings_.size()) return points;
  points.reserve(rings_[id].size());
  rings_[id].for_each([&](const HistoryPoint& p) { points.push_back(p); });
  return points;
}

namespace {
constexpr std::uint32_t kTraceMagic = 0x44504854;  // "DPHT"
}  // namespace

std::vector<std::uint8_t> HistoryRecorder::export_trace() const {
  net::ByteWriter w;
  w.u32(kTraceMagic);
  w.u32(static_cast<std::uint32_t>(rings_.size()));
  for (std::size_t id = 0; id < rings_.size(); ++id) {
    w.u32(static_cast<std::uint32_t>(id));
    w.u32(static_cast<std::uint32_t>(rings_[id].size()));
    rings_[id].for_each([&](const HistoryPoint& p) {
      w.i64(p.at.ns());
      w.f64(p.value);
    });
  }
  return w.take();
}

Result<std::vector<std::pair<MetricId, std::vector<HistoryPoint>>>>
HistoryRecorder::import_trace(const std::vector<std::uint8_t>& bytes) {
  net::ByteReader r{bytes};
  if (r.u32() != kTraceMagic) {
    return Status::invalid_argument("not a dproc history trace");
  }
  const std::uint32_t metric_count = r.u32();
  // Each series needs at least 8 bytes of header; a corrupted count cannot
  // be allowed to drive allocation.
  if (metric_count > r.remaining() / 8) {
    return Status::invalid_argument("corrupt history trace: series count");
  }
  std::vector<std::pair<MetricId, std::vector<HistoryPoint>>> series;
  for (std::uint32_t m = 0; m < metric_count && r.ok(); ++m) {
    const MetricId id = r.u32();
    const std::uint32_t points = r.u32();
    if (points > r.remaining() / 16) {  // 16 bytes per point on the wire
      return Status::invalid_argument("corrupt history trace: point count");
    }
    std::vector<HistoryPoint> history;
    history.reserve(points);
    for (std::uint32_t i = 0; i < points && r.ok(); ++i) {
      HistoryPoint p;
      p.at = SimTime{r.i64()};
      p.value = r.f64();
      history.push_back(p);
    }
    series.emplace_back(id, std::move(history));
  }
  if (!r.ok() || r.remaining() != 0) {
    return Status::invalid_argument("truncated or corrupt history trace");
  }
  return series;
}

}  // namespace dproc::core
