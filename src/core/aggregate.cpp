#include "dproc/core/aggregate.hpp"

#include <algorithm>
#include <iomanip>
#include <limits>
#include <sstream>

namespace dproc::core {

ClusterAggregator::ClusterAggregator(DMon& dmon, procfs::ProcFs& procfs,
                                     SimDuration staleness)
    : dmon_(dmon), staleness_(staleness) {
  for (const MetricDesc& desc : dmon_.metric_table()) {
    const MetricId id = desc.id;
    procfs.register_file("/proc/cluster/summary/" + desc.key, [this, id] {
      const AggregateView view = aggregate(id);
      std::ostringstream out;
      out << std::setprecision(12) << "nodes " << view.nodes << "\n"
          << "min " << view.min << "\n"
          << "mean " << view.mean << "\n"
          << "max " << view.max << "\n";
      return out.str();
    });
  }
}

AggregateView ClusterAggregator::aggregate(MetricId id) const {
  AggregateView view;
  view.min = std::numeric_limits<double>::infinity();
  view.max = -std::numeric_limits<double>::infinity();
  double sum = 0.0;
  const SimTime now = dmon_.host_now();

  auto fold = [&](double value) {
    ++view.nodes;
    sum += value;
    view.min = std::min(view.min, value);
    view.max = std::max(view.max, value);
  };

  if (const MetricSample* local = dmon_.local_metric(id)) {
    fold(local->value);
  }
  dmon_.for_each_peer([&](net::NodeId node, const std::string&) {
    const RemoteMetric* metric = dmon_.remote_metric(node, id);
    if (metric != nullptr && now - metric->received_at <= staleness_) {
      fold(metric->value);
    }
  });

  if (view.nodes == 0) {
    view.min = view.max = 0.0;
  } else {
    view.mean = sum / static_cast<double>(view.nodes);
  }
  return view;
}

AggregateView ClusterAggregator::aggregate(const std::string& key) const {
  auto id = dmon_.metric_id(key);
  return id ? aggregate(*id) : AggregateView{};
}

}  // namespace dproc::core
