#include "dproc/core/tuning.hpp"

#include <cmath>
#include <sstream>

#include "dproc/util/logging.hpp"

namespace dproc::core {

PublisherTuning::PublisherTuning(SimDuration default_period,
                                 std::map<std::string, MetricId> metric_ids)
    : base_period_(default_period),
      default_period_(default_period),
      metric_ids_(std::move(metric_ids)) {
  MetricId max_id = 0;
  for (const auto& [key, id] : metric_ids_) max_id = std::max(max_id, id);
  sent_.resize(metric_ids_.empty() ? 0 : max_id + 1);
}

ecode::CompileEnv PublisherTuning::compile_env() const {
  ecode::CompileEnv env;
  for (const auto& [key, id] : metric_ids_) {
    env.constants[to_filter_constant(key)] = static_cast<std::int64_t>(id);
  }
  env.sketch_builtins = sketch_builtins_;
  return env;
}

void PublisherTuning::rebuild_vm() {
  ecode::VmLimits limits;
  if (fuel_override_) limits.max_instructions = *fuel_override_;
  vm_ = ecode::Vm{limits};
  vm_.set_sketch_host(sketch_host_);
}

namespace {

/// Shared by validate() and apply(): the control file is user-writable, so
/// a fuel request outside (0, kMaxInstructionLimit] is rejected with the
/// reason rather than silently clamped.
Status check_fuel(std::uint64_t fuel) {
  if (fuel == 0) {
    return Status::invalid_argument("filter instruction limit must be positive");
  }
  if (fuel > ecode::VmLimits::kMaxInstructionLimit) {
    return Status::invalid_argument(
        "filter instruction limit exceeds hard ceiling (" +
        std::to_string(ecode::VmLimits::kMaxInstructionLimit) + ")");
  }
  return Status::ok();
}

}  // namespace

Result<MetricId> PublisherTuning::resolve(const std::string& name) const {
  auto it = metric_ids_.find(name);
  if (it == metric_ids_.end()) {
    return Status::not_found("unknown metric '" + name + "'");
  }
  return it->second;
}

Status PublisherTuning::validate(const TuningConfig& config) const {
  if (config.default_period && *config.default_period <= SimDuration::zero()) {
    return Status::invalid_argument("update period must be positive");
  }
  for (const MetricPeriod& mp : config.metric_periods) {
    auto id = resolve(mp.metric);
    if (!id) return id.status();
    if (mp.period <= SimDuration::zero()) {
      return Status::invalid_argument("update period must be positive");
    }
    if (mp.conditional) {
      auto cond = resolve(mp.cond_metric);
      if (!cond) return cond.status();
    }
  }
  // Module names stay remote-validated (module sets are per-node), but a
  // zero or negative window is invalid everywhere: it would busy-loop the
  // module's internal sampling.
  for (const auto& [module_name, period] : config.module_periods) {
    if (period <= SimDuration::zero()) {
      return Status::invalid_argument("module window must be positive");
    }
  }
  for (const Threshold& t : config.thresholds) {
    auto id = resolve(t.metric);
    if (!id) return id.status();
  }
  if (config.differential_pct && *config.differential_pct < 0) {
    return Status::invalid_argument("differential percentage must be >= 0");
  }
  if (config.max_filter_instructions) {
    if (Status fuel = check_fuel(*config.max_filter_instructions); !fuel) {
      return fuel;
    }
  }
  if (config.filter_source && !config.filter_source->empty()) {
    auto compiled =
        ecode::Filter::compile(*config.filter_source, compile_env());
    if (!compiled) return compiled.status();
  }
  return Status::ok();
}

Status PublisherTuning::apply(const TuningConfig& config) {
  // Stage everything first so a failure leaves current state untouched.
  std::map<MetricId, ResolvedPeriod> new_periods = config.clear ? decltype(periods_){} : periods_;
  std::map<MetricId, std::vector<ResolvedThreshold>> new_thresholds =
      config.clear ? decltype(thresholds_){} : thresholds_;
  std::optional<double> new_differential =
      config.clear ? std::nullopt : differential_pct_;
  std::optional<ecode::Filter> new_filter =
      config.clear ? std::nullopt : std::move(filter_);
  SimDuration new_default = config.clear ? base_period_ : default_period_;
  std::optional<std::uint64_t> new_fuel =
      config.clear ? std::nullopt : fuel_override_;
  bool new_filter_sketch_env = filter_sketch_env_;

  // Restore filter_ if we bail out early.
  auto restore = [&] { filter_ = std::move(new_filter); };

  if (config.default_period) {
    if (*config.default_period <= SimDuration::zero()) {
      restore();
      return Status::invalid_argument("update period must be positive");
    }
    new_default = *config.default_period;
  }
  for (const MetricPeriod& mp : config.metric_periods) {
    auto id = resolve(mp.metric);
    if (!id) {
      restore();
      return id.status();
    }
    // Control events decoded off the wire bypass parse_control_commands, so
    // the positivity check has to live here too: a zero period would make
    // the metric publish every poll forever, a negative one always "due".
    if (mp.period <= SimDuration::zero()) {
      restore();
      return Status::invalid_argument("update period must be positive");
    }
    ResolvedPeriod rp;
    rp.period = mp.period;
    rp.conditional = mp.conditional;
    if (mp.conditional) {
      auto cond = resolve(mp.cond_metric);
      if (!cond) {
        restore();
        return cond.status();
      }
      rp.cond_metric = cond.value();
      rp.cond_kind = mp.cond_kind;
      rp.cond_value = mp.cond_value;
    }
    new_periods[id.value()] = rp;
  }
  for (const Threshold& t : config.thresholds) {
    auto id = resolve(t.metric);
    if (!id) {
      restore();
      return id.status();
    }
    new_thresholds[id.value()].push_back(ResolvedThreshold{t.kind, t.a, t.b});
  }
  if (config.differential_pct) {
    if (*config.differential_pct < 0) {
      restore();
      return Status::invalid_argument("differential percentage must be >= 0");
    }
    new_differential = *config.differential_pct;
  }
  if (config.max_filter_instructions) {
    if (Status fuel = check_fuel(*config.max_filter_instructions); !fuel) {
      restore();
      return fuel;
    }
    new_fuel = *config.max_filter_instructions;
  }
  if (config.filter_source) {
    if (config.filter_source->empty()) {
      new_filter.reset();
    } else if (new_filter && new_filter->source() == *config.filter_source &&
               filter_sketch_env_ == sketch_builtins_) {
      // Compiled-program cache: identical source under an identical compile
      // environment yields identical bytecode, so re-installs (periodic
      // idempotent control writes are common) skip the compiler entirely.
      // filter_compiles_ does not move, so d-mon charges no compile cycles.
    } else {
      auto compiled =
          ecode::Filter::compile(*config.filter_source, compile_env());
      if (!compiled) {
        restore();
        return compiled.status();
      }
      new_filter = std::move(compiled).value();
      new_filter_sketch_env = sketch_builtins_;
      ++filter_compiles_;
    }
  }

  periods_ = std::move(new_periods);
  thresholds_ = std::move(new_thresholds);
  differential_pct_ = new_differential;
  filter_ = std::move(new_filter);
  filter_sketch_env_ = new_filter_sketch_env;
  default_period_ = new_default;
  if (new_fuel != fuel_override_) {
    fuel_override_ = new_fuel;
    rebuild_vm();
  }
  if (config.clear) {
    for (SentState& s : sent_) s = SentState{};
    adaptive_.clear();  // the controller re-resolves from scratch next round
  }
  return Status::ok();
}

void PublisherTuning::set_adaptive_period(MetricId id, SimDuration period) {
  if (id >= sent_.size()) return;
  if (adaptive_.size() < sent_.size()) adaptive_.resize(sent_.size());
  adaptive_[id] = period > SimDuration::zero() ? period : SimDuration::zero();
}

void PublisherTuning::clear_adaptive_periods() { adaptive_.clear(); }

std::optional<SimDuration> PublisherTuning::adaptive_period(
    MetricId id) const {
  if (id >= adaptive_.size() || adaptive_[id] <= SimDuration::zero()) {
    return std::nullopt;
  }
  return adaptive_[id];
}

bool PublisherTuning::passes_parameters(const MetricSample& sample,
                                        const std::vector<MetricSample>& all,
                                        SimTime now) const {
  const SentState& state = sent_[sample.id];

  // Effective period, possibly gated on another metric's current value.
  // Precedence: operator rule > adaptive (controller-set) > default.
  SimDuration period = default_period_;
  if (sample.id < adaptive_.size() &&
      adaptive_[sample.id] > SimDuration::zero()) {
    period = adaptive_[sample.id];
  }
  auto period_it = periods_.find(sample.id);
  if (period_it != periods_.end()) {
    const ResolvedPeriod& rp = period_it->second;
    if (rp.conditional) {
      // The guard is re-evaluated against the live metric every poll, and it
      // gates only the special period: while unmet the metric reverts to its
      // base cadence rather than going silent, so the effective period
      // tracks the guard metric ("every 2 s IF utilization above 80%",
      // otherwise at the normal rate).
      const double cond_value = all[rp.cond_metric].value;
      const bool met = rp.cond_kind == ThresholdKind::kAbove
                           ? cond_value > rp.cond_value
                           : cond_value < rp.cond_value;
      if (met) period = rp.period;
    } else {
      period = rp.period;
    }
  }
  if (state.sent && now - state.last_time < period) return false;

  auto threshold_it = thresholds_.find(sample.id);
  if (threshold_it != thresholds_.end()) {
    for (const ResolvedThreshold& t : threshold_it->second) {
      switch (t.kind) {
        case ThresholdKind::kAbove:
          if (!(sample.value > t.a)) return false;
          break;
        case ThresholdKind::kBelow:
          if (!(sample.value < t.a)) return false;
          break;
        case ThresholdKind::kRange:
          if (sample.value < t.a || sample.value > t.b) return false;
          break;
        case ThresholdKind::kChangePct:
          if (state.sent &&
              std::abs(sample.value - state.last_value) <=
                  (t.a / 100.0) * std::abs(state.last_value)) {
            return false;
          }
          break;
      }
    }
  }

  if (differential_pct_) {
    if (state.sent && std::abs(sample.value - state.last_value) <=
                          (*differential_pct_ / 100.0) *
                              std::abs(state.last_value)) {
      return false;
    }
  }
  return true;
}

Decision PublisherTuning::decide(const std::vector<MetricSample>& samples,
                                 SimTime now) {
  Decision decision;

  if (filter_) {
    // Dynamic filter path: the E-code program is the whole policy. The
    // input vector, the VM and the result are all publisher-persistent
    // scratch, so the once-per-poll steady state allocates nothing.
    filter_input_.clear();
    filter_input_.reserve(samples.size());
    for (const MetricSample& s : samples) {
      const SentState& state = s.id < sent_.size() ? sent_[s.id] : SentState{};
      filter_input_.push_back(
          ecode::Sample{static_cast<std::int64_t>(s.id), s.value,
                        state.sent ? state.last_value : 0.0,
                        s.sampled_at.ns()});
    }
    Status run = vm_.run(filter_->bytecode(), filter_input_, filter_result_);
    if (run) {
      decision.filter_instructions = filter_result_.instructions_executed;
      for (const auto& [slot, out] : filter_result_.outputs) {
        const auto id = static_cast<MetricId>(out.id);
        if (id >= samples.size()) continue;  // filter emitted a bogus id
        decision.to_send.push_back(
            MetricSample{id, out.value, SimTime{out.timestamp_ns}});
      }
    } else {
      // Runtime failure: fail open. Losing monitoring data would hide the
      // failure; publishing everything keeps the cluster observable.
      DPROC_WARN() << "filter runtime error: " << run.to_string()
                   << "; publishing unfiltered";
      decision.filter_error = true;
      decision.to_send = samples;
    }
  } else {
    for (const MetricSample& s : samples) {
      if (passes_parameters(s, samples, now)) decision.to_send.push_back(s);
    }
  }

  for (const MetricSample& s : decision.to_send) {
    if (s.id < sent_.size()) {
      sent_[s.id] = SentState{true, s.value, now};
    }
  }
  return decision;
}

std::string PublisherTuning::describe() const {
  std::ostringstream out;
  out << "default_period=" << to_string(default_period_) << "\n";
  auto name_of = [&](MetricId id) -> std::string {
    for (const auto& [key, mid] : metric_ids_) {
      if (mid == id) return key;
    }
    return "#" + std::to_string(id);
  };
  for (const auto& [id, rp] : periods_) {
    out << "period " << name_of(id) << " " << to_string(rp.period);
    if (rp.conditional) {
      out << " if " << name_of(rp.cond_metric)
          << (rp.cond_kind == ThresholdKind::kAbove ? " above " : " below ")
          << rp.cond_value;
    }
    out << "\n";
  }
  for (MetricId id = 0; id < adaptive_.size(); ++id) {
    if (adaptive_[id] > SimDuration::zero() &&
        periods_.find(id) == periods_.end()) {
      out << "adaptive " << name_of(id) << " " << to_string(adaptive_[id])
          << "\n";
    }
  }
  for (const auto& [id, list] : thresholds_) {
    for (const ResolvedThreshold& t : list) {
      out << "threshold " << name_of(id) << " ";
      switch (t.kind) {
        case ThresholdKind::kAbove: out << "above " << t.a; break;
        case ThresholdKind::kBelow: out << "below " << t.a; break;
        case ThresholdKind::kRange: out << "range " << t.a << " " << t.b; break;
        case ThresholdKind::kChangePct: out << "change " << t.a << "%"; break;
      }
      out << "\n";
    }
  }
  if (differential_pct_) out << "differential " << *differential_pct_ << "%\n";
  if (fuel_override_) out << "fuel " << *fuel_override_ << "\n";
  if (filter_) out << "filter installed (" << filter_->source().size()
                   << " bytes)\n";
  return out.str();
}

}  // namespace dproc::core
