#include "dproc/core/cluster.hpp"

#include <cstdint>
#include <stdexcept>

namespace dproc::core {

Cluster::Cluster(sim::Engine& engine, ClusterConfig config)
    : engine_(engine), config_(std::move(config)) {
  if (config_.node_count == 0) {
    throw std::invalid_argument{"cluster needs at least one node"};
  }
  // The health engine reads failure-signal counters and publishes its score
  // through DPROC_MON, both of which need per-host telemetry.
  if (config_.health.enabled) config_.self_monitor = true;
  fabric_ = std::make_unique<net::Fabric>(engine_);
  Rng master{config_.seed};

  std::vector<net::NodeId> node_ids;
  node_ids.reserve(config_.node_count);
  for (std::size_t i = 0; i < config_.node_count; ++i) {
    std::string name = i < config_.node_names.size()
                           ? config_.node_names[i]
                           : "node" + std::to_string(i);
    node_ids.push_back(fabric_->add_node(name));
  }

  // Topology.
  if (!config_.trunk_split) {
    ports_ = fabric_->build_star(node_ids, config_.link);
  } else {
    const std::size_t split = *config_.trunk_split;
    if (split == 0 || split >= config_.node_count) {
      throw std::invalid_argument{"trunk_split must divide the nodes"};
    }
    // Per-node access links plus one full-duplex trunk between switches.
    std::vector<std::pair<net::LinkId, net::LinkId>> ports;
    ports.reserve(node_ids.size());
    for (net::NodeId id : node_ids) {
      (void)id;
      ports.emplace_back(fabric_->add_link(config_.link),
                         fabric_->add_link(config_.link));
    }
    const net::LinkId trunk_ab = fabric_->add_link(config_.trunk);
    const net::LinkId trunk_ba = fabric_->add_link(config_.trunk);
    for (std::size_t i = 0; i < node_ids.size(); ++i) {
      for (std::size_t j = 0; j < node_ids.size(); ++j) {
        if (i == j) continue;
        std::vector<net::LinkId> route{ports[i].first};
        const bool i_in_a = i < split, j_in_a = j < split;
        if (i_in_a && !j_in_a) route.push_back(trunk_ab);
        if (!i_in_a && j_in_a) route.push_back(trunk_ba);
        route.push_back(ports[j].second);
        fabric_->set_route(node_ids[i], node_ids[j], std::move(route));
      }
    }
    ports_ = std::move(ports);
  }

  // Hosts, NICs, pseudo-filesystems.
  nodes_.resize(config_.node_count);
  for (std::size_t i = 0; i < config_.node_count; ++i) {
    ClusterNode& node = nodes_[i];
    host::HostConfig host_config = config_.host_template;
    host_config.name = fabric_->node_name(node_ids[i]);
    node.host = std::make_unique<host::Host>(
        engine_, static_cast<host::HostId>(i), host_config, master.split());
    if (config_.self_monitor) node.host->telemetry().set_enabled(true);
    if (config_.trace.enabled) node.host->telemetry().set_trace_enabled(true);
    if (config_.flight.enabled) {
      node.host->flight().configure(config_.flight.capacity);
      node.host->flight().set_enabled(true);
    }
    node.nic = std::make_unique<net::Nic>(*fabric_, node_ids[i]);
    node.procfs = std::make_unique<procfs::ProcFs>();
  }

  // Channel registry on node 0 (the paper's user-level directory server),
  // or a replica set on nodes 0..R-1 when replication is enabled.
  std::vector<net::NodeId> registry_replica_nodes;
  if (config_.registry.enabled) {
    const std::size_t replica_count =
        std::min(std::max<std::size_t>(config_.registry.replicas, 1),
                 config_.node_count);
    registry_replica_nodes.reserve(replica_count);
    for (std::size_t r = 0; r < replica_count; ++r) {
      registry_replica_nodes.push_back(node_ids[r]);
    }
    registry_replicas_.reserve(replica_count);
    for (std::size_t r = 0; r < replica_count; ++r) {
      registry_replicas_.push_back(std::make_unique<kecho::RegistryServer>(
          *nodes_[r].nic,
          kecho::ReplicaSetup{static_cast<std::uint32_t>(r),
                              registry_replica_nodes, config_.registry}));
      if (config_.self_monitor) {
        registry_replicas_[r]->set_telemetry(&nodes_[r].host->telemetry());
      }
      if (config_.flight.enabled) {
        registry_replicas_[r]->set_flight(&nodes_[r].host->flight());
      }
    }
  } else {
    registry_ = std::make_unique<kecho::RegistryServer>(*nodes_[0].nic);
    if (config_.flight.enabled) registry_->set_flight(&nodes_[0].host->flight());
  }
  if (config_.self_monitor) {
    if (registry_) registry_->set_telemetry(&nodes_[0].host->telemetry());

    // Per-node packet accounting piggybacked on the fabric trace hook.
    // Handles are pre-resolved: the hook runs once per packet event and
    // must stay allocation-free. NodeIds are dense fabric indices.
    struct NetCounters {
      telemetry::Counter* sends;
      telemetry::Counter* delivers;
      telemetry::Counter* drops;
    };
    auto counters = std::make_shared<std::vector<NetCounters>>();
    counters->reserve(nodes_.size());
    for (ClusterNode& node : nodes_) {
      telemetry::Registry& t = node.host->telemetry();
      counters->push_back(NetCounters{&t.counter("net", "sends"),
                                      &t.counter("net", "delivers"),
                                      &t.counter("net", "drops")});
    }
    fabric_->set_trace_hook([counters](net::Fabric::TraceEvent event,
                                       net::DropCause, const net::Packet& p,
                                       SimTime) {
      switch (event) {
        case net::Fabric::TraceEvent::kSend:
          (*counters)[p.src].sends->add();
          break;
        case net::Fabric::TraceEvent::kDeliver:
          (*counters)[p.dst].delivers->add();
          break;
        case net::Fabric::TraceEvent::kDrop:
          // Drops are charged to the sender: the destination never saw the
          // packet, and the sender's stream is the one being thinned.
          (*counters)[p.src].drops->add();
          break;
      }
    });
  }

  // KECho endpoints and d-mons.
  std::vector<bool> runs_dproc(config_.node_count,
                               !config_.dproc_nodes.has_value());
  if (config_.dproc_nodes) {
    for (std::size_t i : *config_.dproc_nodes) runs_dproc.at(i) = true;
  }

  // One layout shared by every d-mon: the zone tree is a pure function of
  // (node_count, hierarchy config), so all nodes agree on it without a
  // topology protocol.
  std::shared_ptr<const HierarchyLayout> hierarchy_layout;
  if (config_.hierarchy.enabled) {
    hierarchy_layout = std::make_shared<const HierarchyLayout>(
        build_hierarchy(config_.node_count, config_.hierarchy));
  }

  kecho::RegistryClientConfig registry_client;
  if (config_.registry.enabled) {
    registry_client.replicas = registry_replica_nodes;
    registry_client.cache = config_.registry.client_cache;
    registry_client.cache_lease = config_.registry.cache_lease;
  }

  for (std::size_t i = 0; i < config_.node_count; ++i) {
    ClusterNode& node = nodes_[i];
    node.kecho = std::make_unique<kecho::Node>(
        *node.host, *node.nic, node_ids[0], kecho::RegistryServer::kDefaultPort,
        kecho::KechoCosts{}, config_.liveness, registry_client);
    if (!runs_dproc[i]) continue;
    DmonConfig dmon_config = config_.dmon;
    if (config_.trace.enabled) dmon_config.trace = config_.trace;
    if (config_.batch.enabled) dmon_config.batch = config_.batch;
    if (config_.adapt.enabled) dmon_config.adapt = config_.adapt;
    if (config_.hierarchy.enabled) {
      dmon_config.hierarchy = config_.hierarchy;
      dmon_config.hierarchy_layout = hierarchy_layout;
    }
    if (config_.health.enabled) dmon_config.health = config_.health;
    if (config_.sketch.enabled) dmon_config.sketch = config_.sketch;
    node.dmon = std::make_unique<DMon>(*node.host, *node.nic, *node.kecho,
                                       *node.procfs, std::move(dmon_config));
    if (config_.module_factory) {
      config_.module_factory(*node.dmon, *node.host, *node.nic);
    } else {
      register_standard_modules(*node.dmon, *node.host, *node.nic,
                                config_.link.bandwidth_bps);
    }
    // TOP_K rides after the standard/custom set on every dproc node, so
    // its metric ids are uniform cluster-wide; its sketch also becomes the
    // node's filter sketch host (first TopKMonitor registered).
    if (config_.sketch.enabled) {
      auto topk = make_topk_process_monitor(
          config_.sketch.k, config_.sketch.process_count, config_.sketch.zipf_s,
          config_.seed ^ (0x70cbULL + i), config_.sketch.params);
      node.dmon->register_module(std::move(topk));
    }
    // Appended last on every dproc node so the cluster-wide metric-id
    // convention holds for the self-monitoring metrics too.
    if (config_.self_monitor) {
      node.dmon->register_module(std::make_unique<DprocMonitor>(
          *node.host, config_.health.enabled));
    }
  }

  // Peer pre-declaration (names + control files). Flat clusters declare
  // all pairs — O(N^2) state, fine at the paper's 8-node scale. With the
  // hierarchy on, each node pre-declares only its leaf-zone mates (or
  // nothing when declare_zone_peers is off); everyone else is learned
  // lazily from the fabric name table on first contact, keeping per-node
  // state O(zone) at 4096-node scale.
  if (config_.hierarchy.enabled) {
    if (config_.hierarchy.declare_zone_peers && hierarchy_layout) {
      for (std::size_t i = 0; i < config_.node_count; ++i) {
        if (!nodes_[i].dmon) continue;
        if (i >= hierarchy_layout->node_count()) continue;
        const HierarchyZone& leaf = hierarchy_layout->leaf_of(i);
        for (std::size_t j : leaf.members) {
          if (i == j || j >= node_ids.size()) continue;
          nodes_[i].dmon->add_peer(node_ids[j],
                                   fabric_->node_name(node_ids[j]));
        }
      }
    }
  } else {
    for (std::size_t i = 0; i < config_.node_count; ++i) {
      if (!nodes_[i].dmon) continue;
      for (std::size_t j = 0; j < config_.node_count; ++j) {
        if (i == j) continue;
        nodes_[i].dmon->add_peer(node_ids[j], fabric_->node_name(node_ids[j]));
      }
    }
  }
}

void Cluster::register_standard_modules(DMon& dmon, host::Host& host,
                                        net::Nic& nic,
                                        double link_capacity_bps) {
  // Experiment-friendly CPU_MON window: the paper notes the 1-minute
  // default is too sluggish for fast-changing load, and its experiments
  // rely on prompt load visibility.
  dmon.register_module(std::make_unique<CpuMonitor>(host, seconds(5.0)));
  dmon.register_module(std::make_unique<MemMonitor>(host));
  dmon.register_module(std::make_unique<DiskMonitor>(host));
  dmon.register_module(
      std::make_unique<NetMonitor>(host, nic, link_capacity_bps));
  dmon.register_module(std::make_unique<PmcMonitor>(
      host, std::vector<std::string>{host::Pmc::kCacheMisses}));
}

void Cluster::start_dproc() {
  for (ClusterNode& node : nodes_) {
    if (node.dmon) node.dmon->start();
  }
}

kecho::RegistryServer* Cluster::registry_leader() {
  if (registry_) return registry_.get();
  for (auto& replica : registry_replicas_) {
    if (replica->online() && replica->is_leader()) return replica.get();
  }
  return nullptr;
}

void Cluster::crash_node(std::size_t i) {
  ClusterNode& node = nodes_.at(i);
  fabric_->set_node_down(node.nic->node(), true);
  if (node.dmon) node.dmon->stop();
  node.kecho->crash();
  // A crashed node takes its registry replica down with it: the replica
  // process stops serving (and heartbeating) until the node restarts.
  if (i < registry_replicas_.size()) registry_replicas_[i]->set_online(false);
}

void Cluster::restart_node(std::size_t i) {
  ClusterNode& node = nodes_.at(i);
  fabric_->set_node_down(node.nic->node(), false);
  if (i < registry_replicas_.size()) registry_replicas_[i]->set_online(true);
  node.kecho->restart();
  if (node.dmon) node.dmon->restart();
}

void Cluster::leave_node(std::size_t i) {
  ClusterNode& node = nodes_.at(i);
  if (node.dmon) node.dmon->stop();
  node.kecho->announce_leave();
}

sim::FaultHooks Cluster::fault_hooks() {
  sim::FaultHooks hooks;
  hooks.node_down = [this](std::uint32_t node, bool down) {
    if (down) {
      crash_node(node);
    } else {
      restart_node(node);
    }
  };
  hooks.link_down = [this](std::uint32_t link, bool down) {
    fabric_->set_link_down(link, down);
  };
  hooks.link_loss = [this](std::uint32_t link, double p, std::uint64_t seed) {
    fabric_->set_link_loss(link, p, seed);
  };
  hooks.registry_down = [this](bool down) {
    // A registry outage takes the whole directory service down — every
    // replica at once (the single-server semantic, preserved).
    if (registry_) {
      registry_->set_online(!down);
    } else {
      for (auto& replica : registry_replicas_) replica->set_online(!down);
    }
  };
  hooks.record = [this](const sim::FaultEvent& event) {
    // Ground truth goes to EVERY host's recorder: the injector's view of
    // what actually happened must survive any single node's crash, and the
    // incident tool dedups the cluster-wide copies back into one event.
    std::uint64_t mapped = UINT64_MAX;
    switch (event.kind) {
      case sim::FaultKind::kLinkDown:
      case sim::FaultKind::kLinkUp:
      case sim::FaultKind::kLinkLossStart:
      case sim::FaultKind::kLinkLossStop:
        // An access link implicates the node behind it; trunk links map to
        // no single node and stay UINT64_MAX.
        for (std::size_t i = 0; i < ports_.size(); ++i) {
          if (ports_[i].first == event.target ||
              ports_[i].second == event.target) {
            mapped = i;
            break;
          }
        }
        break;
      default:
        break;
    }
    const auto severity = event.kind == sim::FaultKind::kNodeRestart ||
                                  event.kind == sim::FaultKind::kLinkUp ||
                                  event.kind == sim::FaultKind::kLinkLossStop ||
                                  event.kind == sim::FaultKind::kRegistryUp
                              ? telemetry::Severity::kInfo
                              : telemetry::Severity::kError;
    for (ClusterNode& node : nodes_) {
      node.host->flight().record(
          severity, telemetry::FlightSubsystem::kFault,
          telemetry::FlightCode::kFaultInjected,
          static_cast<std::uint64_t>(event.kind), event.target,
          static_cast<std::uint64_t>(event.param * 1e6), mapped);
    }
  };
  hooks.registry_leader_kill = [this] {
    if (registry_replicas_.empty()) return;  // needs a replica set
    // Resolve the leader at fire time; fall back to replica 0 (the birth
    // leader) if no replica currently claims the lease.
    std::size_t target = 0;
    for (std::size_t r = 0; r < registry_replicas_.size(); ++r) {
      if (registry_replicas_[r]->online() &&
          registry_replicas_[r]->is_leader()) {
        target = r;
        break;
      }
    }
    crash_node(target);
  };
  return hooks;
}

sim::FaultInjector& Cluster::inject(const sim::FaultPlan& plan) {
  if (!injector_) {
    injector_ = std::make_unique<sim::FaultInjector>(engine_, fault_hooks());
  }
  injector_->schedule(plan);
  return *injector_;
}

}  // namespace dproc::core
