#include "dproc/net/tcp.hpp"

#include <algorithm>

#include "dproc/util/logging.hpp"

namespace dproc::net {

namespace {
std::uint64_t next_flow_id() {
  static std::uint64_t counter = 1;
  return counter++;
}
Port next_ephemeral_port() {
  static Port counter = 32768;
  return counter++;
}
constexpr int kMaxSynAttempts = 8;
}  // namespace

TcpConnection::TcpConnection(Nic& nic, NodeId remote, Port remote_port,
                             Port local_port, std::uint64_t flow_id, Role role,
                             TcpConfig config)
    : nic_(&nic),
      remote_(remote),
      remote_port_(remote_port),
      local_port_(local_port),
      flow_id_(flow_id),
      role_(role),
      config_(config),
      cwnd_(config.initial_cwnd),
      ssthresh_(config.initial_ssthresh),
      rto_(config.min_rto) {}

TcpConnection::~TcpConnection() { close(); }

TcpConnection::Ptr TcpConnection::connect(Nic& nic, NodeId remote,
                                          Port remote_port, TcpConfig config,
                                          std::function<void()> on_established) {
  auto conn = Ptr{new TcpConnection{nic, remote, remote_port,
                                    next_ephemeral_port(), next_flow_id(),
                                    Role::kClient, config}};
  nic.register_tcp(conn->flow_id_, conn.get());
  conn->start_handshake(std::move(on_established));
  return conn;
}

void TcpConnection::start_handshake(std::function<void()> on_established) {
  on_established_ = std::move(on_established);
  ++syn_attempts_;
  Packet syn;
  syn.kind = PacketKind::kTcpSyn;
  emit(std::move(syn));
  // Retry the SYN until the SYN-ACK arrives; gives connection setup the
  // same robustness against floods as data transfer.
  rto_event_.cancel();
  rto_event_ = nic_->fabric().engine().schedule_after(rto_, [self = shared_from_this()] {
    if (self->established_ || self->closed_) return;
    if (self->syn_attempts_ >= kMaxSynAttempts) {
      DPROC_WARN() << "tcp flow " << self->flow_id_ << ": handshake failed after "
                   << self->syn_attempts_ << " attempts";
      return;
    }
    self->rto_ = std::min(self->rto_ * 2.0, self->config_.max_rto);
    self->start_handshake(std::move(self->on_established_));
  });
}

void TcpConnection::become_established() {
  if (established_) return;
  established_ = true;
  rto_event_.cancel();
  rto_ = config_.min_rto;
  if (on_established_) {
    auto fn = std::move(on_established_);
    fn();
  }
  try_transmit();
}

void TcpConnection::send(MessagePtr message) {
  if (closed_) return;
  ++counters_.messages_sent;
  pending_bytes_ += message->size();
  pending_messages_.push_back(std::move(message));
  if (established_) try_transmit();
}

void TcpConnection::try_transmit() {
  const auto cwnd_bytes = std::max<std::uint64_t>(
      static_cast<std::uint64_t>(cwnd_ * static_cast<double>(config_.mss)),
      config_.mss);
  while (true) {
    if (send_ptr_ < snd_next_) {
      // (Re)transmit the already-segmented byte stream from the cursor.
      auto it = unacked_.find(send_ptr_);
      if (it == unacked_.end()) break;  // should not happen; stay safe
      const std::uint64_t end = send_ptr_ + it->second.length;
      if (end - snd_una_ > cwnd_bytes && send_ptr_ > snd_una_) break;
      send_segment(send_ptr_);
      send_ptr_ = end;
      continue;
    }
    if (pending_messages_.empty()) break;
    const std::uint64_t in_flight = snd_next_ - snd_una_;
    if (in_flight + config_.mss > cwnd_bytes && in_flight > 0) break;

    // Carve the next segment off the head message (never crossing the
    // message boundary, so cumulative ACKs land on segment edges and the
    // tail segment can carry the payload pointer).
    const MessagePtr& head = pending_messages_.front();
    const std::uint64_t msg_size = std::max<std::uint64_t>(head->size(), 1);
    const std::uint64_t remaining = msg_size - head_offset_;
    const auto len = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(remaining, config_.mss));
    const bool is_tail = (head_offset_ + len == msg_size);

    Segment seg;
    seg.length = len;
    if (is_tail) seg.message_end = head;
    unacked_.emplace(snd_next_, std::move(seg));

    snd_next_ += len;
    head_offset_ += len;
    pending_bytes_ -= std::min<std::uint64_t>(pending_bytes_, len);
    if (is_tail) {
      pending_messages_.pop_front();
      head_offset_ = 0;
    }
    send_segment(send_ptr_);
    send_ptr_ = snd_next_;
  }
  if (snd_next_ > snd_una_ && !rto_event_.valid()) arm_rto();
}

void TcpConnection::send_segment(std::uint64_t seq) {
  auto it = unacked_.find(seq);
  if (it == unacked_.end()) return;
  Segment& seg = it->second;
  if (seg.transmit_count > 0) {
    ++counters_.retransmissions;
    if (probe_active_ && probe_end_seq_ > seq) probe_active_ = false;  // Karn
  } else if (!probe_active_) {
    probe_active_ = true;
    probe_end_seq_ = seq + seg.length;
    probe_sent_at_ = nic_->fabric().engine().now();
  }
  ++seg.transmit_count;

  Packet p;
  p.kind = PacketKind::kTcpData;
  p.seq = seq;
  p.payload_bytes = seg.length;
  p.message = seg.message_end;
  emit(std::move(p));
}

void TcpConnection::send_ack() {
  Packet p;
  p.kind = PacketKind::kTcpAck;
  p.ack = rcv_next_;
  emit(std::move(p));
}

void TcpConnection::emit(Packet packet) {
  packet.src = nic_->node();
  packet.dst = remote_;
  packet.src_port = local_port_;
  packet.dst_port = remote_port_;
  packet.flow_id = flow_id_;
  packet.sent_at_ns = nic_->fabric().engine().now().ns();
  counters_.wire_bytes_sent += packet.wire_bytes();
  nic_->send_packet(std::move(packet));
}

void TcpConnection::on_packet(const Packet& packet) {
  if (closed_) return;
  switch (packet.kind) {
    case PacketKind::kTcpSynAck:
      if (role_ == Role::kClient) become_established();
      return;
    case PacketKind::kTcpData:
      on_data(packet);
      return;
    case PacketKind::kTcpAck:
      on_ack_packet(packet);
      return;
    case PacketKind::kTcpSyn:
    case PacketKind::kDatagram:
      return;  // not addressed to an established connection
  }
}

void TcpConnection::on_data(const Packet& packet) {
  // Go-back-N: accept only the in-order segment, always acknowledge with
  // the cumulative expectation (out-of-order arrivals generate dup ACKs).
  if (packet.seq == rcv_next_) {
    rcv_next_ += packet.payload_bytes;
    if (packet.message) {
      ++counters_.messages_delivered;
      if (on_message_) on_message_(packet.message);
    }
  }
  send_ack();
}

void TcpConnection::on_ack_packet(const Packet& packet) {
  const std::uint64_t ack = packet.ack;
  if (ack > snd_una_) {
    std::uint64_t acked_segments = 0;
    while (!unacked_.empty() && unacked_.begin()->first < ack) {
      ++acked_segments;
      unacked_.erase(unacked_.begin());
    }
    counters_.bytes_acked += ack - snd_una_;
    snd_una_ = ack;
    send_ptr_ = std::max(send_ptr_, snd_una_);
    dup_acks_ = 0;

    if (probe_active_ && ack >= probe_end_seq_) {
      probe_active_ = false;
      note_rtt_sample(nic_->fabric().engine().now() - probe_sent_at_);
    }

    // Congestion window growth: slow start below ssthresh, then additive.
    for (std::uint64_t i = 0; i < acked_segments; ++i) {
      if (cwnd_ < ssthresh_) {
        cwnd_ += 1.0;
      } else {
        cwnd_ += 1.0 / cwnd_;
      }
    }

    cancel_rto();
    if (snd_next_ > snd_una_) arm_rto();
    try_transmit();
    return;
  }

  if (snd_next_ > snd_una_) {
    ++dup_acks_;
    if (dup_acks_ == 3 && snd_una_ >= recover_) {
      // Loss: multiplicative decrease and go back — the receiver discarded
      // everything after the gap, so rewind the cursor and resend.
      ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
      cwnd_ = ssthresh_;
      dup_acks_ = 0;
      recover_ = snd_next_;
      send_ptr_ = snd_una_;
      cancel_rto();
      try_transmit();
    }
  }
}

void TcpConnection::arm_rto() {
  rto_event_ = nic_->fabric().engine().schedule_after(
      rto_, [self = shared_from_this()] { self->on_rto_expired(); });
}

void TcpConnection::cancel_rto() { rto_event_.cancel(); rto_event_ = {}; }

void TcpConnection::on_rto_expired() {
  rto_event_ = {};
  if (closed_ || snd_next_ == snd_una_) return;
  ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
  cwnd_ = 1.0;
  rto_ = std::min(rto_ * 2.0, config_.max_rto);
  recover_ = snd_next_;
  send_ptr_ = snd_una_;  // go back N
  try_transmit();        // re-arms the timer
}

void TcpConnection::note_rtt_sample(SimDuration sample) {
  srtt_us_.add(sample.us());
  // RTO = srtt * 2 within bounds; coarse but sufficient for a LAN model.
  const SimDuration candidate = microseconds(srtt_us_.value() * 2.0);
  rto_ = std::clamp(candidate, config_.min_rto, config_.max_rto);
}

TcpStats TcpConnection::stats() const {
  TcpStats s = counters_;
  s.srtt_us = srtt_us_.value();
  s.cwnd_segments = cwnd_;
  s.in_flight_bytes = snd_next_ - snd_una_;
  std::uint64_t unsent = pending_bytes_;
  s.send_queue_bytes = unsent;
  return s;
}

void TcpConnection::close() {
  if (closed_) return;
  closed_ = true;
  cancel_rto();
  if (nic_ != nullptr) nic_->unregister_tcp(flow_id_);
}

void TcpConnection::detach_from_nic() {
  closed_ = true;
  cancel_rto();
  nic_ = nullptr;
}

TcpListener::TcpListener(Nic& nic, Port port, TcpConfig config,
                         AcceptHandler on_accept)
    : nic_(nic), config_(config), on_accept_(std::move(on_accept)) {
  nic_.bind_tcp_listener(port, [this, port](const Packet& syn) {
    // Duplicate SYNs (client retries) must not spawn duplicate connections.
    auto existing = accepted_.find(syn.flow_id);
    if (existing == accepted_.end()) {
      auto conn = TcpConnection::Ptr{
          new TcpConnection{nic_, syn.src, syn.src_port, port, syn.flow_id,
                            TcpConnection::Role::kServer, config_}};
      nic_.register_tcp(conn->flow_id_, conn.get());
      conn->established_ = true;
      accepted_.emplace(syn.flow_id, conn);
      existing = accepted_.find(syn.flow_id);
      Packet synack;
      synack.kind = PacketKind::kTcpSynAck;
      existing->second->emit(std::move(synack));
      if (on_accept_) on_accept_(existing->second);
    } else {
      Packet synack;
      synack.kind = PacketKind::kTcpSynAck;
      existing->second->emit(std::move(synack));
    }
  });
}

}  // namespace dproc::net
