#include "dproc/net/fabric.hpp"

#include <limits>
#include <stdexcept>
#include <utility>

#include "dproc/util/logging.hpp"

namespace dproc::net {

const char* to_string(DropCause cause) {
  switch (cause) {
    case DropCause::kNone: return "none";
    case DropCause::kNodeDown: return "node_down";
    case DropCause::kLinkDown: return "link_down";
    case DropCause::kBufferFull: return "buffer_full";
    case DropCause::kLoss: return "loss";
  }
  return "?";
}

DropCause Link::transmit(const Packet& packet,
                         std::function<void(const Packet&)> on_exit) {
  const std::uint64_t wire = packet.wire_bytes();
  // Evaluation order matters for determinism: the loss RNG must only be
  // consulted for packets that would otherwise be accepted, exactly as
  // before the per-cause verdicts were introduced.
  DropCause cause = DropCause::kNone;
  if (down_) {
    cause = DropCause::kLinkDown;
  } else if (backlog_bytes() + wire > config_.buffer_bytes) {
    cause = DropCause::kBufferFull;
  } else if (loss_probability_ > 0.0 &&
             loss_rng_.uniform() < loss_probability_) {
    cause = DropCause::kLoss;
  }
  if (cause != DropCause::kNone) {
    ++stats_.packets_dropped;
    stats_.bytes_dropped += wire;
    return cause;
  }
  const SimTime start = std::max(engine_.now(), busy_until_);
  const SimDuration serialize =
      seconds(static_cast<double>(wire) * 8.0 / config_.bandwidth_bps);
  busy_until_ = start + serialize;
  ++stats_.packets_sent;
  stats_.bytes_sent += wire;

  const SimTime exit_time = busy_until_ + config_.propagation;
  engine_.schedule_at(exit_time, [packet, on_exit = std::move(on_exit)] {
    on_exit(packet);
  });
  return DropCause::kNone;
}

std::uint64_t Link::backlog_bytes() const {
  if (busy_until_ <= engine_.now()) return 0;
  const double sec = (busy_until_ - engine_.now()).sec();
  return static_cast<std::uint64_t>(sec * config_.bandwidth_bps / 8.0);
}

NodeId Fabric::add_node(std::string name) {
  const auto id = static_cast<NodeId>(node_names_.size());
  node_names_.push_back(std::move(name));
  delivery_.emplace_back();
  delivered_bytes_.push_back(0);
  node_down_.push_back(false);
  return id;
}

void Fabric::set_node_down(NodeId node, bool down) {
  node_down_.at(node) = down;
}

bool Fabric::node_down(NodeId node) const { return node_down_.at(node); }

LinkId Fabric::add_link(LinkConfig config) {
  const auto id = static_cast<LinkId>(links_.size());
  links_.push_back(std::make_unique<Link>(engine_, config));
  return id;
}

void Fabric::set_route(NodeId src, NodeId dst, std::vector<LinkId> links) {
  for (LinkId id : links) {
    if (id >= links_.size()) throw std::invalid_argument{"set_route: bad link id"};
  }
  routes_[{src, dst}] = std::move(links);
}

std::vector<std::pair<LinkId, LinkId>> Fabric::build_star(
    const std::vector<NodeId>& nodes, const LinkConfig& config) {
  std::vector<std::pair<LinkId, LinkId>> ports;
  ports.reserve(nodes.size());
  for (NodeId node : nodes) {
    (void)node;
    ports.emplace_back(add_link(config), add_link(config));
  }
  // Routes stay implicit (derived per packet in forward_star): the port
  // table is O(N) where the explicit (src, dst) map would be O(N²) —
  // gigabytes at 4096 nodes. star_ports_ is indexed by NodeId, so pad for
  // any nodes added before this call that are not part of the star.
  if (star_ports_.size() < node_names_.size()) {
    star_ports_.resize(node_names_.size(),
                       {std::numeric_limits<LinkId>::max(),
                        std::numeric_limits<LinkId>::max()});
  }
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    star_ports_.at(nodes[i]) = ports[i];
  }
  return ports;
}

void Fabric::set_delivery_handler(NodeId node, DeliveryHandler handler) {
  delivery_.at(node) = std::move(handler);
}

std::uint64_t Fabric::bytes_delivered_to(NodeId node) const {
  return delivered_bytes_.at(node);
}

void Fabric::count_drop(DropCause cause) {
  switch (cause) {
    case DropCause::kNodeDown: ++stats_.drops_node_down; break;
    case DropCause::kLinkDown: ++stats_.drops_link_down; break;
    case DropCause::kBufferFull: ++stats_.drops_buffer_full; break;
    case DropCause::kLoss: ++stats_.drops_loss; break;
    case DropCause::kNone: break;
  }
}

void Fabric::send(Packet packet, std::function<void(const Packet&)> on_drop) {
  ++stats_.packets_sent;
  if (trace_) trace_(TraceEvent::kSend, DropCause::kNone, packet, engine_.now());
  if (node_down_.at(packet.src)) {
    count_drop(DropCause::kNodeDown);
    if (trace_) {
      trace_(TraceEvent::kDrop, DropCause::kNodeDown, packet, engine_.now());
    }
    if (on_drop) on_drop(packet);
    return;
  }
  if (packet.src == packet.dst) {
    // Loopback: no link traversal, a small in-kernel delay, never dropped.
    engine_.schedule_after(microseconds(1.0), [this, packet = std::move(packet)] {
      if (trace_) {
        trace_(TraceEvent::kDeliver, DropCause::kNone, packet, engine_.now());
      }
      ++stats_.packets_delivered;
      delivered_bytes_.at(packet.dst) += packet.wire_bytes();
      auto& handler = delivery_.at(packet.dst);
      if (handler) handler(packet);
    });
    return;
  }
  auto it = routes_.find({packet.src, packet.dst});
  if (it != routes_.end()) {
    forward(std::move(packet), it->second, 0, std::move(on_drop));
    return;
  }
  if (packet.src < star_ports_.size() && packet.dst < star_ports_.size() &&
      star_ports_[packet.src].first != std::numeric_limits<LinkId>::max() &&
      star_ports_[packet.dst].second != std::numeric_limits<LinkId>::max()) {
    forward_star(std::move(packet), 0, std::move(on_drop));
    return;
  }
  throw std::logic_error{"Fabric::send: no route " + node_name(packet.src) +
                         " -> " + node_name(packet.dst)};
}

void Fabric::deliver(const Packet& packet) {
  if (trace_) {
    trace_(TraceEvent::kDeliver, DropCause::kNone, packet, engine_.now());
  }
  ++stats_.packets_delivered;
  delivered_bytes_.at(packet.dst) += packet.wire_bytes();
  auto& handler = delivery_.at(packet.dst);
  if (handler) {
    handler(packet);
  } else {
    DPROC_DEBUG() << "fabric: packet to " << node_name(packet.dst)
                  << " with no NIC attached; discarded";
  }
}

void Fabric::forward_star(Packet packet, std::size_t hop,
                          std::function<void(const Packet&)> on_drop) {
  if (hop == 2) {
    if (node_down_.at(packet.dst)) {
      count_drop(DropCause::kNodeDown);
      if (trace_) {
        trace_(TraceEvent::kDrop, DropCause::kNodeDown, packet, engine_.now());
      }
      return;  // vanished at the dead NIC
    }
    deliver(packet);
    return;
  }
  const LinkId id = hop == 0 ? star_ports_[packet.src].first
                             : star_ports_[packet.dst].second;
  Link& link = *links_.at(id);
  const DropCause verdict =
      link.transmit(packet, [this, hop, on_drop](const Packet& p) {
        forward_star(p, hop + 1, on_drop);
      });
  if (verdict != DropCause::kNone) {
    count_drop(verdict);
    if (trace_) trace_(TraceEvent::kDrop, verdict, packet, engine_.now());
    if (on_drop) on_drop(packet);
  }
}

void Fabric::forward(Packet packet, const std::vector<LinkId>& route,
                     std::size_t hop, std::function<void(const Packet&)> on_drop) {
  if (hop == route.size()) {
    if (node_down_.at(packet.dst)) {
      count_drop(DropCause::kNodeDown);
      if (trace_) {
        trace_(TraceEvent::kDrop, DropCause::kNodeDown, packet, engine_.now());
      }
      return;  // vanished at the dead NIC
    }
    deliver(packet);
    return;
  }
  Link& link = *links_.at(route[hop]);
  const DropCause verdict = link.transmit(
      packet, [this, &route, hop, on_drop](const Packet& p) {
        forward(p, route, hop + 1, on_drop);
      });
  if (verdict != DropCause::kNone) {
    count_drop(verdict);
    if (trace_) trace_(TraceEvent::kDrop, verdict, packet, engine_.now());
    if (on_drop) on_drop(packet);
  }
}

}  // namespace dproc::net
