#include "dproc/net/nic.hpp"

#include <stdexcept>

#include "dproc/net/tcp.hpp"
#include "dproc/util/logging.hpp"

namespace dproc::net {

Nic::Nic(Fabric& fabric, NodeId node) : fabric_(fabric), node_(node) {
  fabric_.set_delivery_handler(node_, [this](const Packet& p) { on_delivery(p); });
}

Nic::~Nic() {
  fabric_.set_delivery_handler(node_, {});
  // Engine callbacks may keep connections alive past this point; sever
  // their back references so late destruction cannot touch freed memory.
  for (auto& [id, conn] : tcp_conns_) conn->detach_from_nic();
}

void Nic::bind_datagram(Port port, DatagramHandler handler) {
  datagram_handlers_[port] = std::move(handler);
}

void Nic::send_datagram(NodeId dst, Port dst_port, const MessagePtr& message,
                        Port src_port) {
  const std::uint64_t total = message->size();
  const std::uint64_t fragments =
      total == 0 ? 1 : (total + kMtuPayload - 1) / kMtuPayload;
  const std::uint64_t index = next_datagram_index_++;
  ++stats_.datagrams_sent;

  std::uint64_t remaining = total;
  for (std::uint64_t f = 0; f < fragments; ++f) {
    Packet p;
    p.src = node_;
    p.dst = dst;
    p.src_port = src_port;
    p.dst_port = dst_port;
    p.kind = PacketKind::kDatagram;
    p.flow_id = index;  // informational; reassembly keys on (src, src_port)
    p.seq = f;
    p.ack = index;
    p.payload_bytes = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(remaining, kMtuPayload));
    remaining -= p.payload_bytes;
    p.sent_at_ns = fabric_.engine().now().ns();
    if (f + 1 == fragments) p.message = message;
    send_packet(std::move(p));
  }
}

void Nic::send_packet(Packet packet, std::function<void(const Packet&)> on_drop) {
  stats_.bytes_sent += packet.wire_bytes();
  fabric_.send(std::move(packet), std::move(on_drop));
}

const DatagramFlowStats* Nic::datagram_flow(NodeId from, Port from_port) const {
  auto it = flow_stats_.find({from, from_port});
  return it == flow_stats_.end() ? nullptr : &it->second;
}

void Nic::register_tcp(std::uint64_t flow_id, TcpConnection* conn) {
  tcp_conns_[flow_id] = conn;
}

void Nic::unregister_tcp(std::uint64_t flow_id) { tcp_conns_.erase(flow_id); }

void Nic::bind_tcp_listener(Port port, SynHandler handler) {
  tcp_listeners_[port] = std::move(handler);
}

std::vector<TcpConnection*> Nic::tcp_connections() const {
  std::vector<TcpConnection*> conns;
  conns.reserve(tcp_conns_.size());
  for (const auto& [id, conn] : tcp_conns_) conns.push_back(conn);
  return conns;
}

void Nic::on_delivery(const Packet& packet) {
  stats_.bytes_received += packet.wire_bytes();
  switch (packet.kind) {
    case PacketKind::kDatagram:
      deliver_datagram(packet);
      return;
    case PacketKind::kTcpSyn: {
      auto it = tcp_listeners_.find(packet.dst_port);
      if (it != tcp_listeners_.end()) it->second(packet);
      return;
    }
    case PacketKind::kTcpSynAck:
    case PacketKind::kTcpData:
    case PacketKind::kTcpAck: {
      auto it = tcp_conns_.find(packet.flow_id);
      if (it != tcp_conns_.end()) {
        it->second->on_packet(packet);
      } else {
        DPROC_DEBUG() << "nic " << node_ << ": segment for unknown flow "
                      << packet.flow_id;
      }
      return;
    }
  }
}

void Nic::deliver_datagram(const Packet& packet) {
  const std::pair<NodeId, Port> key{packet.src, packet.src_port};
  FragmentState& state = fragment_state_[key];
  DatagramFlowStats& flow = flow_stats_[key];

  const auto index = static_cast<std::int64_t>(packet.ack);
  if (index != state.current_index) {
    // A new datagram started. Close out the previous one and count any
    // datagrams that vanished entirely (all fragments dropped).
    if (state.current_index >= 0 && !state.finished) {
      ++flow.lost;
      ++stats_.datagrams_lost;
    }
    const std::int64_t skipped = index - state.current_index - 1;
    if (skipped > 0) {
      flow.lost += static_cast<std::uint64_t>(skipped);
      stats_.datagrams_lost += static_cast<std::uint64_t>(skipped);
    }
    state.current_index = index;
    state.fragments = 0;
    state.finished = false;
  }
  ++state.fragments;

  if (!packet.message) return;  // middle fragment

  const std::uint64_t total = packet.message->size();
  const std::uint64_t expected =
      total == 0 ? 1 : (total + kMtuPayload - 1) / kMtuPayload;
  state.finished = true;
  if (state.fragments != expected) {
    ++flow.lost;
    ++stats_.datagrams_lost;
    return;
  }
  ++flow.received;
  ++stats_.datagrams_received;
  flow.delay_us.add((fabric_.engine().now() - SimTime{packet.sent_at_ns}).us());

  auto handler = datagram_handlers_.find(packet.dst_port);
  if (handler != datagram_handlers_.end()) {
    handler->second(packet.src, packet.src_port, packet.message);
  }
}

}  // namespace dproc::net
