#include "dproc/apps/workqueue.hpp"

#include <algorithm>
#include <limits>

#include "dproc/net/wire.hpp"
#include "dproc/util/logging.hpp"

namespace dproc::apps {

namespace {

constexpr std::uint8_t kOpRequest = 1;
constexpr std::uint8_t kOpResult = 2;

net::MessagePtr encode_unit(std::uint8_t op, std::uint64_t unit_id,
                            std::uint64_t body_bytes) {
  net::ByteWriter w;
  w.u8(op);
  w.u64(unit_id);
  return net::make_message(w.take(), body_bytes);
}

bool decode_unit(const net::MessagePtr& message, std::uint8_t expected_op,
                 std::uint64_t& unit_id) {
  net::ByteReader r{message->header};
  if (r.u8() != expected_op) return false;
  unit_id = r.u64();
  return r.ok();
}

}  // namespace

// --- Worker ------------------------------------------------------------

Worker::Worker(host::Host& host, net::Nic& nic, WorkQueueConfig config)
    : host_(host), nic_(nic), config_(config) {
  task_ = host_.cpu().add_server_task("workqueue-worker");
  listener_ = std::make_unique<net::TcpListener>(
      nic_, config_.port, net::TcpConfig{},
      [this](net::TcpConnection::Ptr conn) {
        net::TcpConnection* raw = conn.get();
        conn->set_message_handler([this, raw](const net::MessagePtr& m) {
          on_request(raw, m);
        });
        connections_.push_back(std::move(conn));
      });
}

Worker::~Worker() { host_.cpu().remove_task(task_); }

void Worker::on_request(net::TcpConnection* conn,
                        const net::MessagePtr& message) {
  std::uint64_t unit_id = 0;
  if (!decode_unit(message, kOpRequest, unit_id)) {
    DPROC_WARN() << "worker " << nic_.node() << ": malformed work unit";
    return;
  }
  host_.cpu().submit_work(task_, config_.unit_cpu_seconds,
                          [this, conn, unit_id] {
                            ++completed_;
                            conn->send(encode_unit(kOpResult, unit_id,
                                                   config_.unit_result_bytes));
                          });
}

// --- Master ------------------------------------------------------------

Master::Master(host::Host& host, net::Nic& nic, core::DMon* dmon,
               std::vector<net::NodeId> workers, WorkQueueConfig config)
    : host_(host), nic_(nic), dmon_(dmon), config_(config) {
  workers_.reserve(workers.size());
  for (net::NodeId node : workers) {
    WorkerState state;
    state.node = node;
    state.conn = net::TcpConnection::connect(nic_, node, config_.port,
                                             net::TcpConfig{},
                                             [this] { pump(); });
    state.conn->set_message_handler(
        [this, node](const net::MessagePtr& m) { on_result(node, m); });
    workers_.push_back(std::move(state));
  }
}

Master::~Master() = default;

void Master::submit(std::uint64_t count) {
  queued_ += count;
  pump();
}

Master::WorkerState* Master::pick_worker() {
  switch (config_.policy) {
    case SchedulePolicy::kRoundRobin: {
      // First non-saturated worker in rotation order.
      for (std::size_t probe = 0; probe < workers_.size(); ++probe) {
        WorkerState& candidate =
            workers_[(round_robin_next_ + probe) % workers_.size()];
        if (candidate.conn->established() &&
            candidate.outstanding < config_.max_outstanding_per_worker) {
          round_robin_next_ =
              (round_robin_next_ + probe + 1) % workers_.size();
          return &candidate;
        }
      }
      return nullptr;
    }
    case SchedulePolicy::kDprocLoad: {
      // Estimated completion time: the monitored run-queue length tells us
      // how many competitors share the worker's CPU; our own outstanding
      // units queue behind each other as well.
      WorkerState* best = nullptr;
      double best_eta = std::numeric_limits<double>::infinity();
      double best_load = std::numeric_limits<double>::infinity();
      for (WorkerState& candidate : workers_) {
        if (!candidate.conn->established() ||
            candidate.outstanding >= config_.max_outstanding_per_worker) {
          continue;
        }
        double loadavg = 0.0;
        if (dmon_ != nullptr) {
          const core::RemoteMetric* metric =
              dmon_->remote_metric(candidate.node, "loadavg");
          if (metric != nullptr) loadavg = metric->value;
        }
        // Competitors beyond our own queued units slow each unit down.
        const double own = static_cast<double>(candidate.outstanding);
        const double competitors = std::max(0.0, loadavg - std::min(own, 1.0));
        const double eta =
            (own + 1.0) * config_.unit_cpu_seconds * (1.0 + competitors);
        // Ties (common when an idle worker's queue matches a loaded one's
        // service time) go to the lighter node.
        if (eta < best_eta || (eta == best_eta && loadavg < best_load)) {
          best_eta = eta;
          best_load = loadavg;
          best = &candidate;
        }
      }
      return best;
    }
  }
  return nullptr;
}

void Master::pump() {
  while (queued_ > 0) {
    WorkerState* worker = pick_worker();
    if (worker == nullptr) return;
    const std::uint64_t unit_id = next_unit_id_++;
    dispatch_times_[unit_id] = host_.engine().now();
    worker->conn->send(
        encode_unit(kOpRequest, unit_id, config_.unit_request_bytes));
    ++worker->outstanding;
    --queued_;
  }
}

void Master::on_result(net::NodeId worker_node, const net::MessagePtr& message) {
  std::uint64_t unit_id = 0;
  if (!decode_unit(message, kOpResult, unit_id)) {
    DPROC_WARN() << "master: malformed result";
    return;
  }
  for (WorkerState& worker : workers_) {
    if (worker.node == worker_node && worker.outstanding > 0) {
      --worker.outstanding;
      ++worker.completed;
      break;
    }
  }
  ++completed_;
  last_completion_ = host_.engine().now();
  auto dispatched = dispatch_times_.find(unit_id);
  if (dispatched != dispatch_times_.end()) {
    turnaround_sum_sec_ +=
        (host_.engine().now() - dispatched->second).sec();
    dispatch_times_.erase(dispatched);
  }
  pump();
}

double Master::mean_turnaround_sec() const {
  return completed_ == 0 ? 0.0
                         : turnaround_sum_sec_ / static_cast<double>(completed_);
}

std::map<net::NodeId, std::uint64_t> Master::per_worker_completed() const {
  std::map<net::NodeId, std::uint64_t> result;
  for (const WorkerState& worker : workers_) {
    result[worker.node] = worker.completed;
  }
  return result;
}

}  // namespace dproc::apps
