#include "dproc/ecode/fold.hpp"

#include <cmath>
#include <optional>

namespace dproc::ecode {

namespace {

struct Constant {
  bool is_double = false;
  std::int64_t i = 0;
  double d = 0.0;

  [[nodiscard]] double as_double() const {
    return is_double ? d : static_cast<double>(i);
  }
  [[nodiscard]] bool truthy() const { return is_double ? d != 0.0 : i != 0; }
};

std::optional<Constant> constant_of(const Expr& expr) {
  switch (expr.kind) {
    case Expr::Kind::kIntLit:
      return Constant{false, expr.int_value, 0.0};
    case Expr::Kind::kFloatLit:
      return Constant{true, 0, expr.float_value};
    case Expr::Kind::kIdent:
      if (expr.resolution == Resolution::kConstant) {
        return Constant{false, expr.const_value, 0.0};
      }
      return std::nullopt;
    default:
      return std::nullopt;
  }
}

void replace_with(ExprPtr& slot, Constant value, SourceLoc loc) {
  auto literal = std::make_unique<Expr>();
  literal->loc = loc;
  if (value.is_double) {
    literal->kind = Expr::Kind::kFloatLit;
    literal->float_value = value.d;
    literal->type = Type::kDouble;
  } else {
    literal->kind = Expr::Kind::kIntLit;
    literal->int_value = value.i;
    literal->type = Type::kInt;
  }
  slot = std::move(literal);
}

std::optional<Constant> eval_binary(BinaryOp op, Constant a, Constant b) {
  const bool floating = a.is_double || b.is_double;
  Constant result;
  if (floating) {
    const double x = a.as_double(), y = b.as_double();
    result.is_double = true;
    switch (op) {
      case BinaryOp::kAdd: result.d = x + y; break;
      case BinaryOp::kSub: result.d = x - y; break;
      case BinaryOp::kMul: result.d = x * y; break;
      case BinaryOp::kDiv:
        if (y == 0.0) return std::nullopt;  // keep the runtime diagnostic
        result.d = x / y;
        break;
      case BinaryOp::kLt: return Constant{false, x < y, 0.0};
      case BinaryOp::kLe: return Constant{false, x <= y, 0.0};
      case BinaryOp::kGt: return Constant{false, x > y, 0.0};
      case BinaryOp::kGe: return Constant{false, x >= y, 0.0};
      case BinaryOp::kEq: return Constant{false, x == y, 0.0};
      case BinaryOp::kNe: return Constant{false, x != y, 0.0};
      default:
        return std::nullopt;  // int-only ops cannot be floating (sema)
    }
    return result;
  }
  const std::int64_t x = a.i, y = b.i;
  switch (op) {
    case BinaryOp::kAdd: return Constant{false, x + y, 0.0};
    case BinaryOp::kSub: return Constant{false, x - y, 0.0};
    case BinaryOp::kMul: return Constant{false, x * y, 0.0};
    case BinaryOp::kDiv:
      if (y == 0) return std::nullopt;
      return Constant{false, x / y, 0.0};
    case BinaryOp::kMod:
      if (y == 0) return std::nullopt;
      return Constant{false, x % y, 0.0};
    case BinaryOp::kBitAnd: return Constant{false, x & y, 0.0};
    case BinaryOp::kBitOr: return Constant{false, x | y, 0.0};
    case BinaryOp::kBitXor: return Constant{false, x ^ y, 0.0};
    case BinaryOp::kShl:
      if (y < 0 || y > 63) return std::nullopt;
      return Constant{
          false,
          static_cast<std::int64_t>(static_cast<std::uint64_t>(x) << y), 0.0};
    case BinaryOp::kShr:
      if (y < 0 || y > 63) return std::nullopt;
      return Constant{false, x >> y, 0.0};
    case BinaryOp::kLt: return Constant{false, x < y, 0.0};
    case BinaryOp::kLe: return Constant{false, x <= y, 0.0};
    case BinaryOp::kGt: return Constant{false, x > y, 0.0};
    case BinaryOp::kGe: return Constant{false, x >= y, 0.0};
    case BinaryOp::kEq: return Constant{false, x == y, 0.0};
    case BinaryOp::kNe: return Constant{false, x != y, 0.0};
    case BinaryOp::kLogicalAnd:
    case BinaryOp::kLogicalOr:
      return std::nullopt;  // handled structurally for short-circuiting
  }
  return std::nullopt;
}

void fold_stmt(Stmt& stmt);

}  // namespace

bool fold_expr(ExprPtr& expr) {
  if (!expr) return false;
  // Fold children first (assignment targets keep their identity).
  switch (expr->kind) {
    case Expr::Kind::kAssign:
      fold_expr(expr->b);
      if (expr->a && expr->a->kind == Expr::Kind::kIndex) fold_expr(expr->a->b);
      if (expr->a && expr->a->kind == Expr::Kind::kField &&
          expr->a->a->kind == Expr::Kind::kIndex) {
        fold_expr(expr->a->a->b);
      }
      return false;
    case Expr::Kind::kIncDec:
      return false;
    default:
      break;
  }
  fold_expr(expr->a);
  fold_expr(expr->b);
  fold_expr(expr->c);
  for (ExprPtr& arg : expr->args) fold_expr(arg);

  switch (expr->kind) {
    case Expr::Kind::kUnary: {
      const auto operand = constant_of(*expr->a);
      if (!operand) return false;
      Constant result;
      switch (expr->unary_op) {
        case UnaryOp::kNeg:
          result = *operand;
          if (result.is_double) {
            result.d = -result.d;
          } else {
            result.i = -result.i;
          }
          break;
        case UnaryOp::kNot:
          result = Constant{false, operand->truthy() ? 0 : 1, 0.0};
          break;
        case UnaryOp::kBitNot:
          if (operand->is_double) return false;
          result = Constant{false, ~operand->i, 0.0};
          break;
      }
      replace_with(expr, result, expr->loc);
      return true;
    }
    case Expr::Kind::kBinary: {
      // Short-circuit operators fold structurally on a constant left side.
      if (expr->bin_op == BinaryOp::kLogicalAnd ||
          expr->bin_op == BinaryOp::kLogicalOr) {
        const auto lhs = constant_of(*expr->a);
        if (!lhs) return false;
        const bool lhs_true = lhs->truthy();
        const bool is_and = expr->bin_op == BinaryOp::kLogicalAnd;
        if (is_and != lhs_true) {
          // false && x  => 0;  true || x => 1 — the right side is dead and
          // side-effect-free expressions are all E-code allows there to
          // matter; assignments in dead branches are dropped as C would.
          replace_with(expr, Constant{false, lhs_true ? 1 : 0, 0.0}, expr->loc);
          return true;
        }
        // true && x => bool(x); folding to x would skip normalization, so
        // only fold when x is constant too.
        if (const auto rhs = constant_of(*expr->b)) {
          replace_with(expr, Constant{false, rhs->truthy() ? 1 : 0, 0.0},
                       expr->loc);
          return true;
        }
        return false;
      }
      const auto a = constant_of(*expr->a);
      const auto b = constant_of(*expr->b);
      if (!a || !b) return false;
      const auto result = eval_binary(expr->bin_op, *a, *b);
      if (!result) return false;
      replace_with(expr, *result, expr->loc);
      return true;
    }
    case Expr::Kind::kTernary: {
      const auto cond = constant_of(*expr->a);
      if (!cond) return false;
      ExprPtr& branch = cond->truthy() ? expr->b : expr->c;
      // Preserve the ternary's unified type: an int branch under a double
      // ternary must still widen, so only fold it when it is itself a
      // constant we can widen here; otherwise keep the ternary and let
      // codegen insert the conversion.
      if (expr->type == Type::kDouble && branch->type == Type::kInt) {
        const auto value = constant_of(*branch);
        if (!value) return false;
        replace_with(branch, Constant{true, 0, value->as_double()},
                     branch->loc);
      }
      ExprPtr chosen = std::move(branch);
      expr = std::move(chosen);
      return true;
    }
    case Expr::Kind::kCall: {
      // Pure builtins with constant arguments.
      double args[2] = {0.0, 0.0};
      for (std::size_t i = 0; i < expr->args.size() && i < 2; ++i) {
        const auto value = constant_of(*expr->args[i]);
        if (!value) return false;
        args[i] = value->as_double();
      }
      double result = 0.0;
      switch (expr->builtin) {
        case 0: result = std::abs(args[0]); break;
        case 1: result = std::min(args[0], args[1]); break;
        case 2: result = std::max(args[0], args[1]); break;
        case 3: result = std::floor(args[0]); break;
        case 4: result = std::ceil(args[0]); break;
        case 5:
          if (args[0] < 0) return false;  // keep the runtime diagnostic
          result = std::sqrt(args[0]);
          break;
        default:
          return false;
      }
      replace_with(expr, Constant{true, 0, result}, expr->loc);
      return true;
    }
    default:
      return false;
  }
}

namespace {

void fold_stmt(Stmt& stmt) {
  fold_expr(stmt.expr);
  fold_expr(stmt.step);
  if (stmt.init) fold_stmt(*stmt.init);
  if (stmt.then_branch) fold_stmt(*stmt.then_branch);
  if (stmt.else_branch) fold_stmt(*stmt.else_branch);
  if (stmt.loop_body) fold_stmt(*stmt.loop_body);
  for (StmtPtr& child : stmt.body) fold_stmt(*child);
}

}  // namespace

void fold_constants(Program& program) {
  for (StmtPtr& stmt : program.statements) fold_stmt(*stmt);
}

}  // namespace dproc::ecode
