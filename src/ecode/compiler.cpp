#include "dproc/ecode/compiler.hpp"

#include <cassert>
#include <sstream>
#include <stdexcept>

#include "dproc/ecode/sema.hpp"

namespace dproc::ecode {

Bytecode Compiler::compile(const Program& program) {
  code_ = Bytecode{};
  code_.local_slot_count = program.local_slot_count;
  for (const auto& stmt : program.statements) compile_stmt(*stmt);
  emit(Op::kHalt);
  return std::move(code_);
}

std::size_t Compiler::emit(Op op, std::int32_t arg, std::int32_t arg2) {
  code_.insns.push_back(Insn{.op = op, .arg = arg, .arg2 = arg2});
  return code_.insns.size() - 1;
}

std::size_t Compiler::emit_push_int(std::int64_t value) {
  Insn insn{.op = Op::kPushInt, .imm_i = value};
  code_.insns.push_back(insn);
  return code_.insns.size() - 1;
}

std::size_t Compiler::emit_push_float(double value) {
  Insn insn{.op = Op::kPushFloat, .imm_f = value};
  code_.insns.push_back(insn);
  return code_.insns.size() - 1;
}

std::size_t Compiler::emit_jump(Op op) { return emit(op, -1); }

void Compiler::patch_jump(std::size_t at) {
  patch_jump_to(at, code_.insns.size());
}

void Compiler::patch_jump_to(std::size_t at, std::size_t target) {
  code_.insns[at].arg = static_cast<std::int32_t>(target);
}

void Compiler::emit_conversion(Type from, Type to) {
  if (from == to) return;
  if (from == Type::kInt && to == Type::kDouble) {
    emit(Op::kToDouble);
  } else if (from == Type::kDouble && to == Type::kInt) {
    emit(Op::kToInt);
  }
  // sample/sample needs no conversion; mixed sample/numeric was rejected
  // by semantic analysis.
}

void Compiler::compile_stmt(const Stmt& stmt) {
  switch (stmt.kind) {
    case Stmt::Kind::kExpr:
      compile_expr(*stmt.expr);
      emit(Op::kPop);
      return;
    case Stmt::Kind::kVarDecl:
      if (stmt.expr) {
        compile_expr(*stmt.expr);
        emit_conversion(stmt.expr->type, stmt.decl_type);
      } else if (stmt.decl_type == Type::kSample) {
        emit(Op::kPushZeroSample);
      } else if (stmt.decl_type == Type::kDouble) {
        emit_push_float(0.0);
      } else {
        emit_push_int(0);
      }
      emit(Op::kStoreLocal, stmt.local_slot);
      emit(Op::kPop);
      return;
    case Stmt::Kind::kBlock:
      for (const auto& s : stmt.body) compile_stmt(*s);
      return;
    case Stmt::Kind::kIf: {
      compile_expr(*stmt.expr);
      const std::size_t to_else = emit_jump(Op::kJmpIfFalse);
      compile_stmt(*stmt.then_branch);
      if (stmt.else_branch) {
        const std::size_t to_end = emit_jump(Op::kJmp);
        patch_jump(to_else);
        compile_stmt(*stmt.else_branch);
        patch_jump(to_end);
      } else {
        patch_jump(to_else);
      }
      return;
    }
    case Stmt::Kind::kFor: {
      if (stmt.init) compile_stmt(*stmt.init);
      const std::size_t cond_pos = code_.insns.size();
      std::size_t exit_jump = SIZE_MAX;
      if (stmt.expr) {
        compile_expr(*stmt.expr);
        exit_jump = emit_jump(Op::kJmpIfFalse);
      }
      break_frame_.push_back(break_patches_.size());
      continue_frame_.push_back(continue_patches_.size());
      compile_stmt(*stmt.loop_body);
      // continue lands on the step expression
      const std::size_t step_pos = code_.insns.size();
      while (continue_patches_.size() > continue_frame_.back()) {
        patch_jump_to(continue_patches_.back(), step_pos);
        continue_patches_.pop_back();
      }
      continue_frame_.pop_back();
      if (stmt.step) {
        compile_expr(*stmt.step);
        emit(Op::kPop);
      }
      emit(Op::kJmp, static_cast<std::int32_t>(cond_pos));
      if (exit_jump != SIZE_MAX) patch_jump(exit_jump);
      while (break_patches_.size() > break_frame_.back()) {
        patch_jump(break_patches_.back());
        break_patches_.pop_back();
      }
      break_frame_.pop_back();
      return;
    }
    case Stmt::Kind::kWhile: {
      const std::size_t cond_pos = code_.insns.size();
      compile_expr(*stmt.expr);
      const std::size_t exit_jump = emit_jump(Op::kJmpIfFalse);
      break_frame_.push_back(break_patches_.size());
      continue_frame_.push_back(continue_patches_.size());
      compile_stmt(*stmt.loop_body);
      while (continue_patches_.size() > continue_frame_.back()) {
        patch_jump_to(continue_patches_.back(), cond_pos);
        continue_patches_.pop_back();
      }
      continue_frame_.pop_back();
      emit(Op::kJmp, static_cast<std::int32_t>(cond_pos));
      patch_jump(exit_jump);
      while (break_patches_.size() > break_frame_.back()) {
        patch_jump(break_patches_.back());
        break_patches_.pop_back();
      }
      break_frame_.pop_back();
      return;
    }
    case Stmt::Kind::kReturn:
      if (stmt.expr) {
        compile_expr(*stmt.expr);
        emit(Op::kReturn);
      } else {
        emit(Op::kHalt);
      }
      return;
    case Stmt::Kind::kBreak:
      break_patches_.push_back(emit_jump(Op::kJmp));
      return;
    case Stmt::Kind::kContinue:
      continue_patches_.push_back(emit_jump(Op::kJmp));
      return;
  }
}

void Compiler::compile_logical(const Expr& expr) {
  compile_expr(*expr.a);
  if (expr.bin_op == BinaryOp::kLogicalAnd) {
    const std::size_t short_circuit = emit_jump(Op::kJmpIfFalse);
    compile_expr(*expr.b);
    emit(Op::kToBool);
    const std::size_t to_end = emit_jump(Op::kJmp);
    patch_jump(short_circuit);
    emit_push_int(0);
    patch_jump(to_end);
  } else {
    const std::size_t short_circuit = emit_jump(Op::kJmpIfTrue);
    compile_expr(*expr.b);
    emit(Op::kToBool);
    const std::size_t to_end = emit_jump(Op::kJmp);
    patch_jump(short_circuit);
    emit_push_int(1);
    patch_jump(to_end);
  }
}

namespace {
Op binop_insn(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return Op::kAdd;
    case BinaryOp::kSub: return Op::kSub;
    case BinaryOp::kMul: return Op::kMul;
    case BinaryOp::kDiv: return Op::kDiv;
    case BinaryOp::kMod: return Op::kMod;
    case BinaryOp::kLt: return Op::kLt;
    case BinaryOp::kLe: return Op::kLe;
    case BinaryOp::kGt: return Op::kGt;
    case BinaryOp::kGe: return Op::kGe;
    case BinaryOp::kEq: return Op::kEq;
    case BinaryOp::kNe: return Op::kNe;
    case BinaryOp::kBitAnd: return Op::kBitAnd;
    case BinaryOp::kBitOr: return Op::kBitOr;
    case BinaryOp::kBitXor: return Op::kBitXor;
    case BinaryOp::kShl: return Op::kShl;
    case BinaryOp::kShr: return Op::kShr;
    case BinaryOp::kLogicalAnd:
    case BinaryOp::kLogicalOr:
      break;  // handled by compile_logical
  }
  throw std::logic_error{"binop_insn: unexpected operator"};
}
}  // namespace

void Compiler::compile_assign(const Expr& expr) {
  const Expr& target = *expr.a;
  const Expr& value = *expr.b;

  if (target.kind == Expr::Kind::kIdent) {
    // local = value  /  local op= value
    if (expr.compound) {
      emit(Op::kLoadLocal, target.local_slot);
      compile_expr(value);
      emit(binop_insn(expr.bin_op));
    } else {
      compile_expr(value);
    }
    emit_conversion(expr.compound ? Type::kUnknown : value.type, target.type);
    if (expr.compound) {
      // The runtime result of the binop may be double even for int targets
      // (e.g. int += double); force the declared type.
      if (target.type == Type::kInt) emit(Op::kToInt);
      if (target.type == Type::kDouble) emit(Op::kToDouble);
    }
    emit(Op::kStoreLocal, target.local_slot);
    return;
  }

  if (target.kind == Expr::Kind::kIndex) {
    // output[e] = sample
    compile_expr(*target.b);  // index
    compile_expr(value);      // sample
    emit(Op::kStoreOutput);
    return;
  }

  // Field assignment: output[e].f or local_sample.f
  assert(target.kind == Expr::Kind::kField);
  const Expr& base = *target.a;
  const Type field_type = target.type;
  if (base.kind == Expr::Kind::kIndex) {
    compile_expr(*base.b);  // index
    if (expr.compound) {
      emit(Op::kDup);
      emit(Op::kLoadOutput);
      emit(Op::kFieldGet, static_cast<std::int32_t>(target.field));
      compile_expr(value);
      emit(binop_insn(expr.bin_op));
    } else {
      compile_expr(value);
      emit_conversion(value.type, field_type);
    }
    if (expr.compound) {
      if (field_type == Type::kInt) emit(Op::kToInt);
      if (field_type == Type::kDouble) emit(Op::kToDouble);
    }
    emit(Op::kOutputFieldSet, static_cast<std::int32_t>(target.field));
    return;
  }

  // local sample variable field
  if (expr.compound) {
    emit(Op::kLoadLocal, base.local_slot);
    emit(Op::kFieldGet, static_cast<std::int32_t>(target.field));
    compile_expr(value);
    emit(binop_insn(expr.bin_op));
    if (field_type == Type::kInt) emit(Op::kToInt);
    if (field_type == Type::kDouble) emit(Op::kToDouble);
  } else {
    compile_expr(value);
    emit_conversion(value.type, field_type);
  }
  emit(Op::kLocalFieldSet, base.local_slot,
       static_cast<std::int32_t>(target.field));
}

void Compiler::compile_inc_dec(const Expr& expr) {
  // Semantic analysis restricted the target to a local numeric variable.
  const std::int32_t slot = expr.a->local_slot;
  const Type type = expr.a->type;
  emit(Op::kLoadLocal, slot);
  if (!expr.prefix) emit(Op::kDup);  // keep the old value as the result
  if (type == Type::kDouble) {
    emit_push_float(1.0);
  } else {
    emit_push_int(1);
  }
  emit(expr.increment ? Op::kAdd : Op::kSub);
  if (type == Type::kInt) emit(Op::kToInt);
  emit(Op::kStoreLocal, slot);
  if (!expr.prefix) emit(Op::kPop);  // drop the stored (new) value
}

void Compiler::compile_expr(const Expr& expr) {
  switch (expr.kind) {
    case Expr::Kind::kIntLit:
      emit_push_int(expr.int_value);
      return;
    case Expr::Kind::kFloatLit:
      emit_push_float(expr.float_value);
      return;
    case Expr::Kind::kIdent:
      if (expr.resolution == Resolution::kConstant) {
        emit_push_int(expr.const_value);
      } else {
        emit(Op::kLoadLocal, expr.local_slot);
      }
      return;
    case Expr::Kind::kIndex:
      compile_expr(*expr.b);
      emit(expr.a->resolution == Resolution::kInputArray ? Op::kLoadInput
                                                         : Op::kLoadOutput);
      return;
    case Expr::Kind::kField:
      compile_expr(*expr.a);
      emit(Op::kFieldGet, static_cast<std::int32_t>(expr.field));
      return;
    case Expr::Kind::kUnary:
      compile_expr(*expr.a);
      switch (expr.unary_op) {
        case UnaryOp::kNeg: emit(Op::kNeg); break;
        case UnaryOp::kNot: emit(Op::kNot); break;
        case UnaryOp::kBitNot: emit(Op::kBitNot); break;
      }
      return;
    case Expr::Kind::kBinary:
      if (expr.bin_op == BinaryOp::kLogicalAnd ||
          expr.bin_op == BinaryOp::kLogicalOr) {
        compile_logical(expr);
        return;
      }
      compile_expr(*expr.a);
      compile_expr(*expr.b);
      emit(binop_insn(expr.bin_op));
      return;
    case Expr::Kind::kAssign:
      compile_assign(expr);
      return;
    case Expr::Kind::kTernary: {
      compile_expr(*expr.a);
      const std::size_t to_else = emit_jump(Op::kJmpIfFalse);
      compile_expr(*expr.b);
      emit_conversion(expr.b->type, expr.type);
      const std::size_t to_end = emit_jump(Op::kJmp);
      patch_jump(to_else);
      compile_expr(*expr.c);
      emit_conversion(expr.c->type, expr.type);
      patch_jump(to_end);
      return;
    }
    case Expr::Kind::kIncDec:
      compile_inc_dec(expr);
      return;
    case Expr::Kind::kCall:
      for (const auto& arg : expr.args) compile_expr(*arg);
      if (expr.builtin >= kSketchBuiltinBase) {
        emit(Op::kCallSketch, expr.builtin - kSketchBuiltinBase,
             static_cast<std::int32_t>(expr.args.size()));
      } else {
        emit(Op::kCallBuiltin, expr.builtin,
             static_cast<std::int32_t>(expr.args.size()));
      }
      return;
  }
}

}  // namespace dproc::ecode
