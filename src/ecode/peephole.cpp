#include "dproc/ecode/peephole.hpp"

#include <cstddef>
#include <vector>

namespace dproc::ecode {

namespace {

bool is_compare(Op op) { return op >= Op::kLt && op <= Op::kNe; }

bool is_cond_jump(Op op) {
  return op == Op::kJmpIfFalse || op == Op::kJmpIfTrue;
}

std::int32_t predicate_of(Op cmp) {
  return static_cast<std::int32_t>(cmp) - static_cast<std::int32_t>(Op::kLt);
}

}  // namespace

void peephole_optimize(Bytecode& code) {
  const std::vector<Insn>& in = code.insns;
  const std::size_t n = in.size();

  // A fusion window must not contain an interior jump target: every
  // instruction a branch can land on keeps its own program point. Targets
  // may legally be insns.size() (a jump to end), hence n + 1 slots.
  std::vector<std::uint8_t> is_target(n + 1, 0);
  for (const Insn& insn : in) {
    switch (insn.op) {
      case Op::kJmp:
      case Op::kJmpIfFalse:
      case Op::kJmpIfTrue:
        is_target[static_cast<std::size_t>(insn.arg)] = 1;
        break;
      default:
        break;
    }
  }
  // True when [i+1, i+len) holds no jump target.
  const auto window_clear = [&](std::size_t i, std::size_t len) {
    for (std::size_t k = 1; k < len; ++k) {
      if (is_target[i + k]) return false;
    }
    return true;
  };

  std::vector<Insn> out;
  out.reserve(n);
  std::vector<std::size_t> old_to_new(n + 1, 0);

  std::size_t i = 0;
  while (i < n) {
    const Insn& a = in[i];
    const Insn* b = i + 1 < n ? &in[i + 1] : nullptr;
    const Insn* c = i + 2 < n ? &in[i + 2] : nullptr;
    old_to_new[i] = out.size();

    // --- five-wide fusions: whole publication statements --------------------
    if (i + 4 < n && window_clear(i, 5) && a.op == Op::kLoadLocal) {
      // [load_local a][push_int k][add][store_local a][pop]: `a = a + k`
      if (in[i + 1].op == Op::kPushInt && in[i + 2].op == Op::kAdd &&
          in[i + 3].op == Op::kStoreLocal && in[i + 3].arg == a.arg &&
          in[i + 4].op == Op::kPop) {
        out.push_back(Insn{.op = Op::kLocalAddImm,
                           .width = 5,
                           .arg = a.arg,
                           .imm_i = in[i + 1].imm_i});
        for (std::size_t k = 1; k < 5; ++k) old_to_new[i + k] = out.size() - 1;
        i += 5;
        continue;
      }
      // [load_local a][push_int k][load_input][store_output][pop]:
      // `output[a] = input[k]`, the filter's publication statement.
      if (in[i + 1].op == Op::kPushInt && in[i + 2].op == Op::kLoadInput &&
          in[i + 3].op == Op::kStoreOutput && in[i + 4].op == Op::kPop) {
        out.push_back(Insn{.op = Op::kCopyInputToOutput,
                           .width = 5,
                           .arg = a.arg,
                           .imm_i = in[i + 1].imm_i});
        for (std::size_t k = 1; k < 5; ++k) old_to_new[i + k] = out.size() - 1;
        i += 5;
        continue;
      }
    }

    // --- three-wide fusions ------------------------------------------------
    if (c != nullptr && window_clear(i, 3)) {
      // [push_int idx][load_input][field_get f] -> load_input_field_imm
      if (a.op == Op::kPushInt && b->op == Op::kLoadInput &&
          c->op == Op::kFieldGet) {
        out.push_back(Insn{.op = Op::kLoadInputFieldImm,
                           .width = 3,
                           .arg = c->arg,
                           .imm_i = a.imm_i});
        old_to_new[i + 1] = old_to_new[i + 2] = out.size() - 1;
        i += 3;
        continue;
      }
      // [push imm][cmp][jmp_if_*] -> cmp_imm_jmp_if_*
      if ((a.op == Op::kPushInt || a.op == Op::kPushFloat) &&
          is_compare(b->op) && is_cond_jump(c->op)) {
        const bool floats = a.op == Op::kPushFloat;
        out.push_back(Insn{.op = c->op == Op::kJmpIfFalse
                               ? Op::kCmpImmJmpIfFalse
                               : Op::kCmpImmJmpIfTrue,
                           .width = 3,
                           .arg = c->arg,
                           .arg2 = predicate_of(b->op) |
                                   (floats ? kCmpImmFloatBit : 0),
                           .imm_i = a.imm_i,
                           .imm_f = a.imm_f});
        old_to_new[i + 1] = old_to_new[i + 2] = out.size() - 1;
        i += 3;
        continue;
      }
    }

    // --- two-wide fusions --------------------------------------------------
    if (b != nullptr && window_clear(i, 2)) {
      bool fused = true;
      if (a.op == Op::kPushInt && b->op == Op::kLoadInput) {
        out.push_back(
            Insn{.op = Op::kLoadInputImm, .width = 2, .imm_i = a.imm_i});
      } else if (a.op == Op::kLoadInput && b->op == Op::kFieldGet) {
        out.push_back(
            Insn{.op = Op::kLoadInputField, .width = 2, .arg = b->arg});
      } else if (is_compare(a.op) && is_cond_jump(b->op)) {
        out.push_back(Insn{.op = b->op == Op::kJmpIfFalse
                               ? Op::kCmpJmpIfFalse
                               : Op::kCmpJmpIfTrue,
                           .width = 2,
                           .arg = b->arg,
                           .arg2 = predicate_of(a.op)});
      } else if (a.op == Op::kPushInt && b->op == Op::kAdd) {
        out.push_back(Insn{.op = Op::kAddImmI, .width = 2, .imm_i = a.imm_i});
      } else if (a.op == Op::kStoreLocal && b->op == Op::kPop) {
        out.push_back(Insn{.op = Op::kStoreLocalPop, .width = 2, .arg = a.arg});
      } else if (a.op == Op::kStoreOutput && b->op == Op::kPop) {
        out.push_back(Insn{.op = Op::kStoreOutputPop, .width = 2});
      } else {
        fused = false;
      }
      if (fused) {
        old_to_new[i + 1] = out.size() - 1;
        i += 2;
        continue;
      }
    }

    out.push_back(a);
    ++i;
  }
  old_to_new[n] = out.size();

  // Jump args still hold pre-fusion indices; remap them.
  for (Insn& insn : out) {
    switch (insn.op) {
      case Op::kJmp:
      case Op::kJmpIfFalse:
      case Op::kJmpIfTrue:
      case Op::kCmpJmpIfFalse:
      case Op::kCmpJmpIfTrue:
      case Op::kCmpImmJmpIfFalse:
      case Op::kCmpImmJmpIfTrue:
        insn.arg = static_cast<std::int32_t>(
            old_to_new[static_cast<std::size_t>(insn.arg)]);
        break;
      default:
        break;
    }
  }

  code.insns = std::move(out);
}

}  // namespace dproc::ecode
