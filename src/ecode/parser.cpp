#include "dproc/ecode/parser.hpp"

#include <utility>

namespace dproc::ecode {

namespace {

ExprPtr make_expr(Expr::Kind kind, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->loc = loc;
  return e;
}

StmtPtr make_stmt(Stmt::Kind kind, SourceLoc loc) {
  auto s = std::make_unique<Stmt>();
  s->kind = kind;
  s->loc = loc;
  return s;
}

struct BinOpInfo {
  BinaryOp op;
  int precedence;  // higher binds tighter
};

// C precedence table for the binary operators E-code supports.
const BinOpInfo* binop_info(TokenKind kind) {
  switch (kind) {
    case TokenKind::kStar:    { static BinOpInfo i{BinaryOp::kMul, 10}; return &i; }
    case TokenKind::kSlash:   { static BinOpInfo i{BinaryOp::kDiv, 10}; return &i; }
    case TokenKind::kPercent: { static BinOpInfo i{BinaryOp::kMod, 10}; return &i; }
    case TokenKind::kPlus:    { static BinOpInfo i{BinaryOp::kAdd, 9}; return &i; }
    case TokenKind::kMinus:   { static BinOpInfo i{BinaryOp::kSub, 9}; return &i; }
    case TokenKind::kShl:     { static BinOpInfo i{BinaryOp::kShl, 8}; return &i; }
    case TokenKind::kShr:     { static BinOpInfo i{BinaryOp::kShr, 8}; return &i; }
    case TokenKind::kLt:      { static BinOpInfo i{BinaryOp::kLt, 7}; return &i; }
    case TokenKind::kLe:      { static BinOpInfo i{BinaryOp::kLe, 7}; return &i; }
    case TokenKind::kGt:      { static BinOpInfo i{BinaryOp::kGt, 7}; return &i; }
    case TokenKind::kGe:      { static BinOpInfo i{BinaryOp::kGe, 7}; return &i; }
    case TokenKind::kEq:      { static BinOpInfo i{BinaryOp::kEq, 6}; return &i; }
    case TokenKind::kNe:      { static BinOpInfo i{BinaryOp::kNe, 6}; return &i; }
    case TokenKind::kAmp:     { static BinOpInfo i{BinaryOp::kBitAnd, 5}; return &i; }
    case TokenKind::kCaret:   { static BinOpInfo i{BinaryOp::kBitXor, 4}; return &i; }
    case TokenKind::kPipe:    { static BinOpInfo i{BinaryOp::kBitOr, 3}; return &i; }
    case TokenKind::kAndAnd:  { static BinOpInfo i{BinaryOp::kLogicalAnd, 2}; return &i; }
    case TokenKind::kOrOr:    { static BinOpInfo i{BinaryOp::kLogicalOr, 1}; return &i; }
    default: return nullptr;
  }
}

}  // namespace

const Token& Parser::peek(std::size_t ahead) const {
  const std::size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
  return tokens_[i];
}

const Token& Parser::advance() {
  const Token& tok = tokens_[pos_];
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return tok;
}

bool Parser::match(TokenKind kind) {
  if (!check(kind)) return false;
  advance();
  return true;
}

bool Parser::expect(TokenKind kind, const char* context) {
  if (match(kind)) return true;
  error(peek().loc, std::string{"expected "} + to_string(kind) + " " + context +
                        ", found " + to_string(peek().kind));
  return false;
}

void Parser::error(SourceLoc loc, std::string message) {
  diagnostics_.push_back({loc, std::move(message)});
}

void Parser::synchronize() {
  // Skip to a statement boundary so one error doesn't cascade.
  while (!check(TokenKind::kEof)) {
    if (match(TokenKind::kSemicolon)) return;
    if (check(TokenKind::kRBrace)) return;
    advance();
  }
}

bool Parser::is_type_keyword(TokenKind kind) {
  return kind == TokenKind::kKwInt || kind == TokenKind::kKwLong ||
         kind == TokenKind::kKwDouble || kind == TokenKind::kKwSample;
}

Type Parser::keyword_type(TokenKind kind) {
  switch (kind) {
    case TokenKind::kKwInt:
    case TokenKind::kKwLong:
      return Type::kInt;
    case TokenKind::kKwDouble:
      return Type::kDouble;
    case TokenKind::kKwSample:
      return Type::kSample;
    default:
      return Type::kUnknown;
  }
}

Result<Program> Parser::parse_program() {
  Program program;
  // The canonical filter shape is `{ ... }`; accept a bare list too.
  const bool braced = match(TokenKind::kLBrace);
  const TokenKind terminator = braced ? TokenKind::kRBrace : TokenKind::kEof;
  while (!check(terminator) && !check(TokenKind::kEof)) {
    if (auto stmt = parse_statement()) {
      program.statements.push_back(std::move(stmt));
    } else {
      synchronize();
    }
  }
  if (braced) expect(TokenKind::kRBrace, "to close the filter body");
  if (!check(TokenKind::kEof)) {
    error(peek().loc, "trailing tokens after filter body");
  }
  if (!diagnostics_.empty()) {
    return Status::invalid_argument(format_diagnostics(diagnostics_));
  }
  return program;
}

StmtPtr Parser::parse_statement() {
  const Token& tok = peek();
  if (is_type_keyword(tok.kind)) {
    const Type type = keyword_type(advance().kind);
    return parse_var_decl(type);
  }
  switch (tok.kind) {
    case TokenKind::kLBrace: return parse_block();
    case TokenKind::kKwIf: return parse_if();
    case TokenKind::kKwFor: return parse_for();
    case TokenKind::kKwWhile: return parse_while();
    case TokenKind::kKwReturn: return parse_return();
    case TokenKind::kKwBreak: {
      auto s = make_stmt(Stmt::Kind::kBreak, advance().loc);
      expect(TokenKind::kSemicolon, "after 'break'");
      return s;
    }
    case TokenKind::kKwContinue: {
      auto s = make_stmt(Stmt::Kind::kContinue, advance().loc);
      expect(TokenKind::kSemicolon, "after 'continue'");
      return s;
    }
    case TokenKind::kSemicolon: {
      // Empty statement.
      auto s = make_stmt(Stmt::Kind::kBlock, advance().loc);
      return s;
    }
    default: {
      auto s = make_stmt(Stmt::Kind::kExpr, tok.loc);
      s->expr = parse_expression();
      if (!s->expr) return nullptr;
      expect(TokenKind::kSemicolon, "after expression");
      return s;
    }
  }
}

StmtPtr Parser::parse_var_decl(Type type) {
  const Token& name_tok = peek();
  auto s = make_stmt(Stmt::Kind::kVarDecl, name_tok.loc);
  s->decl_type = type;
  if (!check(TokenKind::kIdentifier)) {
    error(name_tok.loc, "expected variable name");
    return nullptr;
  }
  s->name = advance().text;
  if (match(TokenKind::kAssign)) {
    s->expr = parse_expression();
    if (!s->expr) return nullptr;
  }
  expect(TokenKind::kSemicolon, "after declaration");
  return s;
}

StmtPtr Parser::parse_block() {
  auto s = make_stmt(Stmt::Kind::kBlock, peek().loc);
  expect(TokenKind::kLBrace, "to open block");
  while (!check(TokenKind::kRBrace) && !check(TokenKind::kEof)) {
    if (auto stmt = parse_statement()) {
      s->body.push_back(std::move(stmt));
    } else {
      synchronize();
    }
  }
  expect(TokenKind::kRBrace, "to close block");
  return s;
}

StmtPtr Parser::parse_if() {
  auto s = make_stmt(Stmt::Kind::kIf, advance().loc);
  expect(TokenKind::kLParen, "after 'if'");
  s->expr = parse_expression();
  expect(TokenKind::kRParen, "after if condition");
  s->then_branch = parse_statement();
  if (match(TokenKind::kKwElse)) {
    s->else_branch = parse_statement();
  }
  if (!s->expr || !s->then_branch) return nullptr;
  return s;
}

StmtPtr Parser::parse_for() {
  auto s = make_stmt(Stmt::Kind::kFor, advance().loc);
  expect(TokenKind::kLParen, "after 'for'");

  // init: declaration, expression, or empty
  if (match(TokenKind::kSemicolon)) {
    // empty init
  } else if (is_type_keyword(peek().kind)) {
    const Type type = keyword_type(advance().kind);
    s->init = parse_var_decl(type);  // consumes the ';'
  } else {
    auto init = make_stmt(Stmt::Kind::kExpr, peek().loc);
    init->expr = parse_expression();
    expect(TokenKind::kSemicolon, "after for-init");
    s->init = std::move(init);
  }

  if (!check(TokenKind::kSemicolon)) {
    s->expr = parse_expression();
  }
  expect(TokenKind::kSemicolon, "after for-condition");

  if (!check(TokenKind::kRParen)) {
    s->step = parse_expression();
  }
  expect(TokenKind::kRParen, "after for-step");

  s->loop_body = parse_statement();
  if (!s->loop_body) return nullptr;
  return s;
}

StmtPtr Parser::parse_while() {
  auto s = make_stmt(Stmt::Kind::kWhile, advance().loc);
  expect(TokenKind::kLParen, "after 'while'");
  s->expr = parse_expression();
  expect(TokenKind::kRParen, "after while condition");
  s->loop_body = parse_statement();
  if (!s->expr || !s->loop_body) return nullptr;
  return s;
}

StmtPtr Parser::parse_return() {
  auto s = make_stmt(Stmt::Kind::kReturn, advance().loc);
  if (!check(TokenKind::kSemicolon)) {
    s->expr = parse_expression();
  }
  expect(TokenKind::kSemicolon, "after return");
  return s;
}

namespace {
/// Scoped depth counter for the recursion guard.
class DepthGuard {
 public:
  explicit DepthGuard(int& depth) : depth_(depth) { ++depth_; }
  ~DepthGuard() { --depth_; }
  DepthGuard(const DepthGuard&) = delete;
  DepthGuard& operator=(const DepthGuard&) = delete;

 private:
  int& depth_;
};
}  // namespace

ExprPtr Parser::parse_expression() {
  DepthGuard guard{expr_depth_};
  if (expr_depth_ > kMaxExprDepth) {
    error(peek().loc, "expression nesting too deep");
    // Consume the offending token so error recovery makes progress.
    advance();
    return nullptr;
  }
  ExprPtr lhs = parse_ternary();
  if (!lhs) return nullptr;

  // Right-associative assignment.
  const TokenKind kind = peek().kind;
  BinaryOp compound_op{};
  bool is_assign = false, is_compound = false;
  switch (kind) {
    case TokenKind::kAssign: is_assign = true; break;
    case TokenKind::kPlusAssign: is_assign = is_compound = true; compound_op = BinaryOp::kAdd; break;
    case TokenKind::kMinusAssign: is_assign = is_compound = true; compound_op = BinaryOp::kSub; break;
    case TokenKind::kStarAssign: is_assign = is_compound = true; compound_op = BinaryOp::kMul; break;
    case TokenKind::kSlashAssign: is_assign = is_compound = true; compound_op = BinaryOp::kDiv; break;
    case TokenKind::kPercentAssign: is_assign = is_compound = true; compound_op = BinaryOp::kMod; break;
    default: return lhs;
  }
  (void)is_assign;
  const SourceLoc loc = advance().loc;
  auto rhs = parse_expression();
  if (!rhs) return nullptr;
  auto e = make_expr(Expr::Kind::kAssign, loc);
  e->a = std::move(lhs);
  e->b = std::move(rhs);
  e->compound = is_compound;
  e->bin_op = compound_op;
  return e;
}

ExprPtr Parser::parse_ternary() {
  ExprPtr cond = parse_binary(1);
  if (!cond) return nullptr;
  if (!match(TokenKind::kQuestion)) return cond;
  const SourceLoc loc = cond->loc;
  auto then_expr = parse_expression();
  expect(TokenKind::kColon, "in ternary expression");
  auto else_expr = parse_ternary();
  if (!then_expr || !else_expr) return nullptr;
  auto e = make_expr(Expr::Kind::kTernary, loc);
  e->a = std::move(cond);
  e->b = std::move(then_expr);
  e->c = std::move(else_expr);
  return e;
}

ExprPtr Parser::parse_binary(int min_precedence) {
  ExprPtr lhs = parse_unary();
  if (!lhs) return nullptr;
  while (true) {
    const BinOpInfo* info = binop_info(peek().kind);
    if (info == nullptr || info->precedence < min_precedence) return lhs;
    const SourceLoc loc = advance().loc;
    ExprPtr rhs = parse_binary(info->precedence + 1);
    if (!rhs) return nullptr;
    auto e = make_expr(Expr::Kind::kBinary, loc);
    e->bin_op = info->op;
    e->a = std::move(lhs);
    e->b = std::move(rhs);
    lhs = std::move(e);
  }
}

ExprPtr Parser::parse_unary() {
  const Token& tok = peek();
  switch (tok.kind) {
    case TokenKind::kMinus: {
      const SourceLoc loc = advance().loc;
      auto operand = parse_unary();
      if (!operand) return nullptr;
      auto e = make_expr(Expr::Kind::kUnary, loc);
      e->unary_op = UnaryOp::kNeg;
      e->a = std::move(operand);
      return e;
    }
    case TokenKind::kNot: {
      const SourceLoc loc = advance().loc;
      auto operand = parse_unary();
      if (!operand) return nullptr;
      auto e = make_expr(Expr::Kind::kUnary, loc);
      e->unary_op = UnaryOp::kNot;
      e->a = std::move(operand);
      return e;
    }
    case TokenKind::kTilde: {
      const SourceLoc loc = advance().loc;
      auto operand = parse_unary();
      if (!operand) return nullptr;
      auto e = make_expr(Expr::Kind::kUnary, loc);
      e->unary_op = UnaryOp::kBitNot;
      e->a = std::move(operand);
      return e;
    }
    case TokenKind::kPlusPlus:
    case TokenKind::kMinusMinus: {
      const bool increment = tok.kind == TokenKind::kPlusPlus;
      const SourceLoc loc = advance().loc;
      auto operand = parse_unary();
      if (!operand) return nullptr;
      auto e = make_expr(Expr::Kind::kIncDec, loc);
      e->prefix = true;
      e->increment = increment;
      e->a = std::move(operand);
      return e;
    }
    case TokenKind::kPlus: {  // unary plus: no-op
      advance();
      return parse_unary();
    }
    default:
      return parse_postfix();
  }
}

ExprPtr Parser::parse_postfix() {
  ExprPtr expr = parse_primary();
  if (!expr) return nullptr;
  while (true) {
    if (expr->kind == Expr::Kind::kIdent && check(TokenKind::kLParen)) {
      advance();
      auto call = make_expr(Expr::Kind::kCall, expr->loc);
      call->name = expr->name;
      if (!check(TokenKind::kRParen)) {
        do {
          auto arg = parse_expression();
          if (!arg) return nullptr;
          call->args.push_back(std::move(arg));
        } while (match(TokenKind::kComma));
      }
      expect(TokenKind::kRParen, "to close argument list");
      expr = std::move(call);
      continue;
    }
    if (match(TokenKind::kLBracket)) {
      const SourceLoc loc = expr->loc;
      auto index = parse_expression();
      expect(TokenKind::kRBracket, "after index");
      if (!index) return nullptr;
      auto e = make_expr(Expr::Kind::kIndex, loc);
      e->a = std::move(expr);
      e->b = std::move(index);
      expr = std::move(e);
    } else if (match(TokenKind::kDot)) {
      if (!check(TokenKind::kIdentifier)) {
        error(peek().loc, "expected field name after '.'");
        return nullptr;
      }
      const Token& field = advance();
      auto e = make_expr(Expr::Kind::kField, field.loc);
      e->name = field.text;
      e->a = std::move(expr);
      expr = std::move(e);
    } else if (check(TokenKind::kPlusPlus) || check(TokenKind::kMinusMinus)) {
      const bool increment = peek().kind == TokenKind::kPlusPlus;
      const SourceLoc loc = advance().loc;
      auto e = make_expr(Expr::Kind::kIncDec, loc);
      e->prefix = false;
      e->increment = increment;
      e->a = std::move(expr);
      expr = std::move(e);
    } else {
      return expr;
    }
  }
}

ExprPtr Parser::parse_primary() {
  const Token& tok = peek();
  switch (tok.kind) {
    case TokenKind::kIntLiteral: {
      auto e = make_expr(Expr::Kind::kIntLit, tok.loc);
      e->int_value = advance().int_value;
      return e;
    }
    case TokenKind::kFloatLiteral: {
      auto e = make_expr(Expr::Kind::kFloatLit, tok.loc);
      e->float_value = advance().float_value;
      return e;
    }
    case TokenKind::kIdentifier: {
      auto e = make_expr(Expr::Kind::kIdent, tok.loc);
      e->name = advance().text;
      return e;
    }
    case TokenKind::kLParen: {
      advance();
      auto e = parse_expression();
      expect(TokenKind::kRParen, "to close parenthesized expression");
      return e;
    }
    default:
      error(tok.loc, std::string{"expected expression, found "} +
                         to_string(tok.kind));
      advance();
      return nullptr;
  }
}

}  // namespace dproc::ecode
