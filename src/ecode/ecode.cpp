#include "dproc/ecode/ecode.hpp"

#include <sstream>

#include "dproc/ecode/compiler.hpp"
#include "dproc/ecode/fold.hpp"
#include "dproc/ecode/lexer.hpp"
#include "dproc/ecode/parser.hpp"
#include "dproc/ecode/peephole.hpp"

namespace dproc::ecode {

Result<Filter> Filter::compile(std::string_view source, const CompileEnv& env,
                               CompileOptions options) {
  auto tokens = Lexer{source}.tokenize();
  if (!tokens) return tokens.status();

  auto program = Parser{std::move(tokens).value()}.parse_program();
  if (!program) return program.status();

  Program ast = std::move(program).value();
  if (Status status = Sema{env}.analyze(ast); !status) return status;
  if (options.fold_constants) fold_constants(ast);

  Bytecode code = Compiler{}.compile(ast);
  if (options.peephole) peephole_optimize(code);
  return Filter{std::string{source}, std::move(code)};
}

const char* to_string(Op op) {
  switch (op) {
    case Op::kPushInt: return "push_int";
    case Op::kPushFloat: return "push_float";
    case Op::kPushZeroSample: return "push_zero_sample";
    case Op::kCallBuiltin: return "call_builtin";
    case Op::kCallSketch: return "call_sketch";
    case Op::kLoadLocal: return "load_local";
    case Op::kStoreLocal: return "store_local";
    case Op::kDup: return "dup";
    case Op::kPop: return "pop";
    case Op::kSwap: return "swap";
    case Op::kLoadInput: return "load_input";
    case Op::kLoadOutput: return "load_output";
    case Op::kStoreOutput: return "store_output";
    case Op::kFieldGet: return "field_get";
    case Op::kOutputFieldSet: return "output_field_set";
    case Op::kLocalFieldSet: return "local_field_set";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kMul: return "mul";
    case Op::kDiv: return "div";
    case Op::kMod: return "mod";
    case Op::kNeg: return "neg";
    case Op::kNot: return "not";
    case Op::kBitNot: return "bit_not";
    case Op::kBitAnd: return "bit_and";
    case Op::kBitOr: return "bit_or";
    case Op::kBitXor: return "bit_xor";
    case Op::kShl: return "shl";
    case Op::kShr: return "shr";
    case Op::kLt: return "lt";
    case Op::kLe: return "le";
    case Op::kGt: return "gt";
    case Op::kGe: return "ge";
    case Op::kEq: return "eq";
    case Op::kNe: return "ne";
    case Op::kToInt: return "to_int";
    case Op::kToDouble: return "to_double";
    case Op::kToBool: return "to_bool";
    case Op::kJmp: return "jmp";
    case Op::kJmpIfFalse: return "jmp_if_false";
    case Op::kJmpIfTrue: return "jmp_if_true";
    case Op::kReturn: return "return";
    case Op::kHalt: return "halt";
    case Op::kLoadInputImm: return "load_input_imm";
    case Op::kLoadInputField: return "load_input_field";
    case Op::kLoadInputFieldImm: return "load_input_field_imm";
    case Op::kAddImmI: return "add_imm_i";
    case Op::kStoreLocalPop: return "store_local_pop";
    case Op::kCmpJmpIfFalse: return "cmp_jmp_if_false";
    case Op::kCmpJmpIfTrue: return "cmp_jmp_if_true";
    case Op::kCmpImmJmpIfFalse: return "cmp_imm_jmp_if_false";
    case Op::kCmpImmJmpIfTrue: return "cmp_imm_jmp_if_true";
    case Op::kStoreOutputPop: return "store_output_pop";
    case Op::kLocalAddImm: return "local_add_imm";
    case Op::kCopyInputToOutput: return "copy_input_to_output";
  }
  return "?";
}

std::string Bytecode::disassemble() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < insns.size(); ++i) {
    const Insn& insn = insns[i];
    out << i << ": " << to_string(insn.op);
    switch (insn.op) {
      case Op::kPushInt:
      case Op::kLoadInputImm:
      case Op::kAddImmI:
        out << " " << insn.imm_i;
        break;
      case Op::kPushFloat:
        out << " " << insn.imm_f;
        break;
      case Op::kLoadLocal:
      case Op::kStoreLocal:
      case Op::kJmp:
      case Op::kJmpIfFalse:
      case Op::kJmpIfTrue:
      case Op::kFieldGet:
      case Op::kOutputFieldSet:
      case Op::kLoadInputField:
      case Op::kStoreLocalPop:
        out << " " << insn.arg;
        break;
      case Op::kLocalFieldSet:
      case Op::kCallBuiltin:
      case Op::kCallSketch:
      case Op::kCmpJmpIfFalse:
      case Op::kCmpJmpIfTrue:
        out << " " << insn.arg << " " << insn.arg2;
        break;
      case Op::kLoadInputFieldImm:
      case Op::kLocalAddImm:
      case Op::kCopyInputToOutput:
        out << " " << insn.imm_i << " " << insn.arg;
        break;
      case Op::kCmpImmJmpIfFalse:
      case Op::kCmpImmJmpIfTrue:
        out << " " << insn.arg << " " << insn.arg2;
        if ((insn.arg2 & kCmpImmFloatBit) != 0) {
          out << " " << insn.imm_f;
        } else {
          out << " " << insn.imm_i;
        }
        break;
      default:
        break;
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace dproc::ecode
