#include "dproc/ecode/vm.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

namespace dproc::ecode {

namespace {

/// Runtime value: an int, a double, or a sample.
struct Value {
  enum class Kind : std::uint8_t { kInt, kDouble, kSample } kind = Kind::kInt;
  std::int64_t i = 0;
  double d = 0.0;
  Sample s{};

  static Value from_int(std::int64_t v) {
    Value x;
    x.kind = Kind::kInt;
    x.i = v;
    return x;
  }
  static Value from_double(double v) {
    Value x;
    x.kind = Kind::kDouble;
    x.d = v;
    return x;
  }
  static Value from_sample(const Sample& v) {
    Value x;
    x.kind = Kind::kSample;
    x.s = v;
    return x;
  }

  [[nodiscard]] bool is_numeric() const { return kind != Kind::kSample; }
  [[nodiscard]] double as_double() const {
    return kind == Kind::kDouble ? d : static_cast<double>(i);
  }
  [[nodiscard]] std::int64_t as_int() const {
    return kind == Kind::kInt ? i : static_cast<std::int64_t>(d);
  }
  [[nodiscard]] bool truthy() const {
    return kind == Kind::kDouble ? d != 0.0 : i != 0;
  }
};

std::string at_pc(std::size_t pc) {
  return " (pc=" + std::to_string(pc) + ")";
}

}  // namespace

Result<FilterResult> Vm::run(const Bytecode& code,
                             std::span<const Sample> input) {
  std::vector<Value> stack;
  stack.reserve(16);
  std::vector<Value> locals(code.local_slot_count);
  std::map<std::int64_t, Sample> outputs;

  FilterResult result;
  std::uint64_t fuel = 0;
  std::size_t pc = 0;

  auto pop = [&]() {
    Value v = stack.back();
    stack.pop_back();
    return v;
  };

  while (pc < code.insns.size()) {
    if (++fuel > limits_.max_instructions) {
      return Status{StatusCode::kResourceExhausted,
                    "filter exceeded instruction limit (" +
                        std::to_string(limits_.max_instructions) + ")"};
    }
    const Insn& insn = code.insns[pc];
    switch (insn.op) {
      case Op::kPushInt:
        stack.push_back(Value::from_int(insn.imm_i));
        break;
      case Op::kPushFloat:
        stack.push_back(Value::from_double(insn.imm_f));
        break;
      case Op::kPushZeroSample:
        stack.push_back(Value::from_sample(Sample{}));
        break;
      case Op::kLoadLocal:
        stack.push_back(locals[static_cast<std::size_t>(insn.arg)]);
        break;
      case Op::kStoreLocal:
        locals[static_cast<std::size_t>(insn.arg)] = stack.back();
        break;
      case Op::kDup:
        stack.push_back(stack.back());
        break;
      case Op::kPop:
        stack.pop_back();
        break;
      case Op::kSwap:
        std::swap(stack[stack.size() - 1], stack[stack.size() - 2]);
        break;

      case Op::kLoadInput: {
        const std::int64_t idx = pop().as_int();
        if (idx < 0 || static_cast<std::size_t>(idx) >= input.size()) {
          return Status::invalid_argument(
              "input index " + std::to_string(idx) + " out of range [0, " +
              std::to_string(input.size()) + ")" + at_pc(pc));
        }
        stack.push_back(Value::from_sample(input[static_cast<std::size_t>(idx)]));
        break;
      }
      case Op::kLoadOutput: {
        const std::int64_t idx = pop().as_int();
        if (idx < 0 || idx > limits_.max_output_index) {
          return Status::invalid_argument("output index " + std::to_string(idx) +
                                          " out of range" + at_pc(pc));
        }
        auto it = outputs.find(idx);
        stack.push_back(
            Value::from_sample(it == outputs.end() ? Sample{} : it->second));
        break;
      }
      case Op::kStoreOutput: {
        const Value value = pop();
        const std::int64_t idx = pop().as_int();
        if (idx < 0 || idx > limits_.max_output_index) {
          return Status::invalid_argument("output index " + std::to_string(idx) +
                                          " out of range" + at_pc(pc));
        }
        if (value.kind != Value::Kind::kSample) {
          return Status::internal("store of non-sample into output" + at_pc(pc));
        }
        outputs[idx] = value.s;
        stack.push_back(value);
        break;
      }
      case Op::kFieldGet: {
        const Value base = pop();
        if (base.kind != Value::Kind::kSample) {
          return Status::internal("field access on non-sample" + at_pc(pc));
        }
        switch (static_cast<SampleField>(insn.arg)) {
          case SampleField::kValue:
            stack.push_back(Value::from_double(base.s.value));
            break;
          case SampleField::kLastValueSent:
            stack.push_back(Value::from_double(base.s.last_value_sent));
            break;
          case SampleField::kId:
            stack.push_back(Value::from_int(base.s.id));
            break;
          case SampleField::kTimestamp:
            stack.push_back(Value::from_int(base.s.timestamp_ns));
            break;
        }
        break;
      }
      case Op::kOutputFieldSet: {
        const Value value = pop();
        const std::int64_t idx = pop().as_int();
        if (idx < 0 || idx > limits_.max_output_index) {
          return Status::invalid_argument("output index " + std::to_string(idx) +
                                          " out of range" + at_pc(pc));
        }
        Sample& sample = outputs[idx];
        switch (static_cast<SampleField>(insn.arg)) {
          case SampleField::kValue: sample.value = value.as_double(); break;
          case SampleField::kLastValueSent:
            sample.last_value_sent = value.as_double();
            break;
          case SampleField::kId: sample.id = value.as_int(); break;
          case SampleField::kTimestamp: sample.timestamp_ns = value.as_int(); break;
        }
        stack.push_back(value);
        break;
      }
      case Op::kLocalFieldSet: {
        const Value value = pop();
        Sample& sample = locals[static_cast<std::size_t>(insn.arg)].s;
        locals[static_cast<std::size_t>(insn.arg)].kind = Value::Kind::kSample;
        switch (static_cast<SampleField>(insn.arg2)) {
          case SampleField::kValue: sample.value = value.as_double(); break;
          case SampleField::kLastValueSent:
            sample.last_value_sent = value.as_double();
            break;
          case SampleField::kId: sample.id = value.as_int(); break;
          case SampleField::kTimestamp: sample.timestamp_ns = value.as_int(); break;
        }
        stack.push_back(value);
        break;
      }

      case Op::kAdd:
      case Op::kSub:
      case Op::kMul:
      case Op::kDiv: {
        const Value b = pop();
        const Value a = pop();
        if (a.kind == Value::Kind::kDouble || b.kind == Value::Kind::kDouble) {
          const double x = a.as_double(), y = b.as_double();
          double r = 0;
          switch (insn.op) {
            case Op::kAdd: r = x + y; break;
            case Op::kSub: r = x - y; break;
            case Op::kMul: r = x * y; break;
            case Op::kDiv:
              if (y == 0.0) {
                return Status::invalid_argument("division by zero" + at_pc(pc));
              }
              r = x / y;
              break;
            default: break;
          }
          stack.push_back(Value::from_double(r));
        } else {
          const std::int64_t x = a.i, y = b.i;
          std::int64_t r = 0;
          switch (insn.op) {
            case Op::kAdd: r = x + y; break;
            case Op::kSub: r = x - y; break;
            case Op::kMul: r = x * y; break;
            case Op::kDiv:
              if (y == 0) {
                return Status::invalid_argument("division by zero" + at_pc(pc));
              }
              r = x / y;
              break;
            default: break;
          }
          stack.push_back(Value::from_int(r));
        }
        break;
      }
      case Op::kMod: {
        const std::int64_t y = pop().as_int();
        const std::int64_t x = pop().as_int();
        if (y == 0) {
          return Status::invalid_argument("modulo by zero" + at_pc(pc));
        }
        stack.push_back(Value::from_int(x % y));
        break;
      }
      case Op::kNeg: {
        const Value a = pop();
        stack.push_back(a.kind == Value::Kind::kDouble
                            ? Value::from_double(-a.d)
                            : Value::from_int(-a.i));
        break;
      }
      case Op::kNot:
        stack.push_back(Value::from_int(pop().truthy() ? 0 : 1));
        break;
      case Op::kBitNot:
        stack.push_back(Value::from_int(~pop().as_int()));
        break;
      case Op::kBitAnd: {
        const std::int64_t y = pop().as_int(), x = pop().as_int();
        stack.push_back(Value::from_int(x & y));
        break;
      }
      case Op::kBitOr: {
        const std::int64_t y = pop().as_int(), x = pop().as_int();
        stack.push_back(Value::from_int(x | y));
        break;
      }
      case Op::kBitXor: {
        const std::int64_t y = pop().as_int(), x = pop().as_int();
        stack.push_back(Value::from_int(x ^ y));
        break;
      }
      case Op::kShl: {
        const std::int64_t y = pop().as_int(), x = pop().as_int();
        if (y < 0 || y > 63) {
          return Status::invalid_argument("shift amount out of range" + at_pc(pc));
        }
        stack.push_back(Value::from_int(
            static_cast<std::int64_t>(static_cast<std::uint64_t>(x) << y)));
        break;
      }
      case Op::kShr: {
        const std::int64_t y = pop().as_int(), x = pop().as_int();
        if (y < 0 || y > 63) {
          return Status::invalid_argument("shift amount out of range" + at_pc(pc));
        }
        stack.push_back(Value::from_int(x >> y));
        break;
      }

      case Op::kLt:
      case Op::kLe:
      case Op::kGt:
      case Op::kGe:
      case Op::kEq:
      case Op::kNe: {
        const Value b = pop();
        const Value a = pop();
        bool r = false;
        if (a.kind == Value::Kind::kDouble || b.kind == Value::Kind::kDouble) {
          const double x = a.as_double(), y = b.as_double();
          switch (insn.op) {
            case Op::kLt: r = x < y; break;
            case Op::kLe: r = x <= y; break;
            case Op::kGt: r = x > y; break;
            case Op::kGe: r = x >= y; break;
            case Op::kEq: r = x == y; break;
            case Op::kNe: r = x != y; break;
            default: break;
          }
        } else {
          const std::int64_t x = a.i, y = b.i;
          switch (insn.op) {
            case Op::kLt: r = x < y; break;
            case Op::kLe: r = x <= y; break;
            case Op::kGt: r = x > y; break;
            case Op::kGe: r = x >= y; break;
            case Op::kEq: r = x == y; break;
            case Op::kNe: r = x != y; break;
            default: break;
          }
        }
        stack.push_back(Value::from_int(r ? 1 : 0));
        break;
      }

      case Op::kToInt: {
        Value& top = stack.back();
        if (top.kind == Value::Kind::kDouble) {
          top = Value::from_int(static_cast<std::int64_t>(top.d));
        }
        break;
      }
      case Op::kToDouble: {
        Value& top = stack.back();
        if (top.kind == Value::Kind::kInt) {
          top = Value::from_double(static_cast<double>(top.i));
        }
        break;
      }
      case Op::kToBool: {
        Value& top = stack.back();
        top = Value::from_int(top.truthy() ? 1 : 0);
        break;
      }

      case Op::kCallBuiltin: {
        const int argc = insn.arg2;
        double args[2] = {0.0, 0.0};
        for (int i = argc - 1; i >= 0; --i) args[i] = pop().as_double();
        double r = 0.0;
        switch (insn.arg) {
          case 0: r = std::abs(args[0]); break;           // abs
          case 1: r = std::min(args[0], args[1]); break;  // min
          case 2: r = std::max(args[0], args[1]); break;  // max
          case 3: r = std::floor(args[0]); break;         // floor
          case 4: r = std::ceil(args[0]); break;          // ceil
          case 5:                                          // sqrt
            if (args[0] < 0) {
              return Status::invalid_argument("sqrt of negative value" +
                                              at_pc(pc));
            }
            r = std::sqrt(args[0]);
            break;
          default:
            return Status::internal("unknown builtin" + at_pc(pc));
        }
        stack.push_back(Value::from_double(r));
        break;
      }
      case Op::kJmp:
        pc = static_cast<std::size_t>(insn.arg);
        continue;
      case Op::kJmpIfFalse:
        if (!pop().truthy()) {
          pc = static_cast<std::size_t>(insn.arg);
          continue;
        }
        break;
      case Op::kJmpIfTrue:
        if (pop().truthy()) {
          pc = static_cast<std::size_t>(insn.arg);
          continue;
        }
        break;

      case Op::kReturn:
        result.return_value = pop().as_double();
        pc = code.insns.size();
        continue;
      case Op::kHalt:
        pc = code.insns.size();
        continue;
    }
    ++pc;
  }

  result.instructions_executed = fuel;
  result.outputs.reserve(outputs.size());
  for (const auto& [idx, sample] : outputs) result.outputs.emplace_back(idx, sample);
  return result;
}

}  // namespace dproc::ecode
