#include "dproc/ecode/vm.hpp"

#include <algorithm>
#include <cmath>

namespace dproc::ecode {

namespace {

std::string at_pc(std::size_t pc) {
  return " (pc=" + std::to_string(pc) + ")";
}

}  // namespace

void Vm::ensure_output_slot(std::size_t idx) {
  const std::size_t needed = idx + 1;
  if (out_samples_.size() >= needed) return;
  std::size_t grown = std::max(needed, out_samples_.size() * 2);
  grown = std::min(grown,
                   static_cast<std::size_t>(limits_.max_output_index) + 1);
  out_samples_.resize(grown);
  out_written_.resize(grown, 0);
}

Result<FilterResult> Vm::run(const Bytecode& code,
                             std::span<const Sample> input) {
  FilterResult result;
  if (Status status = run(code, input, result); !status) return status;
  return result;
}

Status Vm::run(const Bytecode& code, std::span<const Sample> input,
               FilterResult& result) {
  using Kind = Value::Kind;

  const auto as_double = [](const Value& v) -> double {
    switch (v.kind) {
      case Kind::kInt: return static_cast<double>(v.i);
      case Kind::kDouble: return v.d;
      case Kind::kSample: break;
    }
    return 0.0;
  };
  const auto as_int = [](const Value& v) -> std::int64_t {
    switch (v.kind) {
      case Kind::kInt: return v.i;
      case Kind::kDouble: return static_cast<std::int64_t>(v.d);
      case Kind::kSample: break;
    }
    return 0;
  };
  const auto truthy = [](const Value& v) -> bool {
    return v.kind == Kind::kDouble ? v.d != 0.0
                                   : (v.kind == Kind::kInt ? v.i != 0 : false);
  };
  const auto from_int = [](std::int64_t v) {
    Value x;
    x.kind = Kind::kInt;
    x.i = v;
    return x;
  };
  const auto from_double = [](double v) {
    Value x;
    x.kind = Kind::kDouble;
    x.d = v;
    return x;
  };
  const auto from_sample = [](const Sample& v) {
    Value x;
    x.kind = Kind::kSample;
    x.s = v;
    return x;
  };
  // Comparison predicate for both the plain kLt..kNe block and the fused
  // compare-and-branch superinstructions; `which` is the offset from kLt.
  const auto compare = [](int which, bool floating, double fx, double fy,
                          std::int64_t ix, std::int64_t iy) -> bool {
    if (floating) {
      switch (which) {
        case 0: return fx < fy;
        case 1: return fx <= fy;
        case 2: return fx > fy;
        case 3: return fx >= fy;
        case 4: return fx == fy;
        case 5: return fx != fy;
        default: return false;
      }
    }
    switch (which) {
      case 0: return ix < iy;
      case 1: return ix <= iy;
      case 2: return ix > iy;
      case 3: return ix >= iy;
      case 4: return ix == iy;
      case 5: return ix != iy;
      default: return false;
    }
  };

  // --- reset the scratch arenas (allocation-free once warm) ---------------
  // Every instruction pushes at most one value, so the program length bounds
  // the operand-stack depth; sizing to it up front lets the dispatch loop
  // run on a raw pointer with no per-push capacity checks.
  if (stack_.size() < code.insns.size() + 8) {
    stack_.resize(code.insns.size() + 8);
  }
  locals_.assign(code.local_slot_count, Value{});
  for (const std::int32_t idx : out_touched_) {
    out_written_[static_cast<std::size_t>(idx)] = 0;
  }
  out_touched_.clear();
  result.outputs.clear();
  result.return_value.reset();
  result.instructions_executed = 0;

  // Marks `idx` written this run, zeroing the slot on first touch (the
  // dense array may hold stale samples from the previous run).
  const auto touch_output = [&](std::int64_t idx) -> Sample& {
    const auto u = static_cast<std::size_t>(idx);
    ensure_output_slot(u);
    Sample& slot = out_samples_[u];
    if (!out_written_[u]) {
      out_written_[u] = 1;
      out_touched_.push_back(static_cast<std::int32_t>(idx));
      slot = Sample{};
    }
    return slot;
  };

  std::uint64_t fuel = 0;
  std::size_t pc = 0;

  Value* sp = stack_.data();  // one past the top of the operand stack
  const auto push = [&](const Value& v) { *sp++ = v; };
  const auto pop = [&]() -> Value { return *--sp; };
  // The fuel *limit* is enforced at control-flow edges only: straight-line
  // code cannot loop, so any runaway program hits a jump check. The
  // counter itself stays exact (superinstruction widths included).
  const auto out_of_fuel = [&]() { return fuel > limits_.max_instructions; };
  const auto fuel_error = [&]() {
    return Status{StatusCode::kResourceExhausted,
                  "filter exceeded instruction limit (" +
                      std::to_string(limits_.max_instructions) + ")"};
  };

  const std::size_t end = code.insns.size();
  while (pc < end) {
    const Insn& insn = code.insns[pc];
    fuel += insn.width;
    switch (insn.op) {
      case Op::kPushInt:
        push(from_int(insn.imm_i));
        break;
      case Op::kPushFloat:
        push(from_double(insn.imm_f));
        break;
      case Op::kPushZeroSample:
        push(from_sample(Sample{}));
        break;
      case Op::kLoadLocal:
        push(locals_[static_cast<std::size_t>(insn.arg)]);
        break;
      case Op::kStoreLocal:
        locals_[static_cast<std::size_t>(insn.arg)] = sp[-1];
        break;
      case Op::kStoreLocalPop:
        locals_[static_cast<std::size_t>(insn.arg)] = sp[-1];
        --sp;
        break;
      case Op::kDup:
        push(sp[-1]);
        break;
      case Op::kPop:
        --sp;
        break;
      case Op::kSwap:
        std::swap(sp[-1], sp[-2]);
        break;

      case Op::kLoadInput: {
        const std::int64_t idx = as_int(pop());
        if (idx < 0 || static_cast<std::size_t>(idx) >= input.size()) {
          return Status::invalid_argument(
              "input index " + std::to_string(idx) + " out of range [0, " +
              std::to_string(input.size()) + ")" + at_pc(pc));
        }
        push(from_sample(input[static_cast<std::size_t>(idx)]));
        break;
      }
      case Op::kLoadInputImm: {
        const std::int64_t idx = insn.imm_i;
        if (idx < 0 || static_cast<std::size_t>(idx) >= input.size()) {
          return Status::invalid_argument(
              "input index " + std::to_string(idx) + " out of range [0, " +
              std::to_string(input.size()) + ")" + at_pc(pc));
        }
        push(from_sample(input[static_cast<std::size_t>(idx)]));
        break;
      }
      case Op::kLoadOutput: {
        const std::int64_t idx = as_int(pop());
        if (idx < 0 || idx > limits_.max_output_index) {
          return Status::invalid_argument("output index " + std::to_string(idx) +
                                          " out of range" + at_pc(pc));
        }
        const auto u = static_cast<std::size_t>(idx);
        push(from_sample(u < out_samples_.size() && out_written_[u]
                                         ? out_samples_[u]
                                         : Sample{}));
        break;
      }
      case Op::kStoreOutput: {
        const Value value = pop();
        const std::int64_t idx = as_int(pop());
        if (idx < 0 || idx > limits_.max_output_index) {
          return Status::invalid_argument("output index " + std::to_string(idx) +
                                          " out of range" + at_pc(pc));
        }
        if (value.kind != Kind::kSample) {
          return Status::internal("store of non-sample into output" + at_pc(pc));
        }
        touch_output(idx) = value.s;
        push(value);
        break;
      }
      case Op::kStoreOutputPop: {
        const Value value = pop();
        const std::int64_t idx = as_int(pop());
        if (idx < 0 || idx > limits_.max_output_index) {
          return Status::invalid_argument("output index " + std::to_string(idx) +
                                          " out of range" + at_pc(pc));
        }
        if (value.kind != Kind::kSample) {
          return Status::internal("store of non-sample into output" + at_pc(pc));
        }
        touch_output(idx) = value.s;
        break;
      }
      case Op::kFieldGet: {
        const Value base = pop();
        if (base.kind != Kind::kSample) {
          return Status::internal("field access on non-sample" + at_pc(pc));
        }
        switch (static_cast<SampleField>(insn.arg)) {
          case SampleField::kValue:
            push(from_double(base.s.value));
            break;
          case SampleField::kLastValueSent:
            push(from_double(base.s.last_value_sent));
            break;
          case SampleField::kId:
            push(from_int(base.s.id));
            break;
          case SampleField::kTimestamp:
            push(from_int(base.s.timestamp_ns));
            break;
        }
        break;
      }
      case Op::kLoadInputField:
      case Op::kLoadInputFieldImm: {
        std::int64_t idx;
        if (insn.op == Op::kLoadInputFieldImm) {
          idx = insn.imm_i;
        } else {
          idx = as_int(pop());
        }
        if (idx < 0 || static_cast<std::size_t>(idx) >= input.size()) {
          return Status::invalid_argument(
              "input index " + std::to_string(idx) + " out of range [0, " +
              std::to_string(input.size()) + ")" + at_pc(pc));
        }
        const Sample& s = input[static_cast<std::size_t>(idx)];
        switch (static_cast<SampleField>(insn.arg)) {
          case SampleField::kValue: push(from_double(s.value)); break;
          case SampleField::kLastValueSent:
            push(from_double(s.last_value_sent));
            break;
          case SampleField::kId: push(from_int(s.id)); break;
          case SampleField::kTimestamp:
            push(from_int(s.timestamp_ns));
            break;
        }
        break;
      }
      case Op::kOutputFieldSet: {
        const Value value = pop();
        const std::int64_t idx = as_int(pop());
        if (idx < 0 || idx > limits_.max_output_index) {
          return Status::invalid_argument("output index " + std::to_string(idx) +
                                          " out of range" + at_pc(pc));
        }
        Sample& sample = touch_output(idx);
        switch (static_cast<SampleField>(insn.arg)) {
          case SampleField::kValue: sample.value = as_double(value); break;
          case SampleField::kLastValueSent:
            sample.last_value_sent = as_double(value);
            break;
          case SampleField::kId: sample.id = as_int(value); break;
          case SampleField::kTimestamp: sample.timestamp_ns = as_int(value); break;
        }
        push(value);
        break;
      }
      case Op::kLocalFieldSet: {
        const Value value = pop();
        Value& local = locals_[static_cast<std::size_t>(insn.arg)];
        if (local.kind != Kind::kSample) {
          local.kind = Kind::kSample;
          local.s = Sample{};
        }
        Sample& sample = local.s;
        switch (static_cast<SampleField>(insn.arg2)) {
          case SampleField::kValue: sample.value = as_double(value); break;
          case SampleField::kLastValueSent:
            sample.last_value_sent = as_double(value);
            break;
          case SampleField::kId: sample.id = as_int(value); break;
          case SampleField::kTimestamp: sample.timestamp_ns = as_int(value); break;
        }
        push(value);
        break;
      }

      case Op::kAdd:
      case Op::kSub:
      case Op::kMul:
      case Op::kDiv: {
        const Value b = pop();
        const Value a = pop();
        if (a.kind == Kind::kDouble || b.kind == Kind::kDouble) {
          const double x = as_double(a), y = as_double(b);
          double r = 0;
          switch (insn.op) {
            case Op::kAdd: r = x + y; break;
            case Op::kSub: r = x - y; break;
            case Op::kMul: r = x * y; break;
            case Op::kDiv:
              if (y == 0.0) {
                return Status::invalid_argument("division by zero" + at_pc(pc));
              }
              r = x / y;
              break;
            default: break;
          }
          push(from_double(r));
        } else {
          const std::int64_t x = as_int(a), y = as_int(b);
          std::int64_t r = 0;
          switch (insn.op) {
            case Op::kAdd: r = x + y; break;
            case Op::kSub: r = x - y; break;
            case Op::kMul: r = x * y; break;
            case Op::kDiv:
              if (y == 0) {
                return Status::invalid_argument("division by zero" + at_pc(pc));
              }
              r = x / y;
              break;
            default: break;
          }
          push(from_int(r));
        }
        break;
      }
      case Op::kAddImmI: {
        Value& top = sp[-1];
        if (top.kind == Kind::kDouble) {
          top.d += static_cast<double>(insn.imm_i);
        } else {
          top = from_int(as_int(top) + insn.imm_i);
        }
        break;
      }
      case Op::kLocalAddImm: {
        Value& local = locals_[static_cast<std::size_t>(insn.arg)];
        if (local.kind == Kind::kDouble) {
          local.d += static_cast<double>(insn.imm_i);
        } else {
          local = from_int(as_int(local) + insn.imm_i);
        }
        break;
      }
      case Op::kCopyInputToOutput: {
        const std::int64_t in_idx = insn.imm_i;
        if (in_idx < 0 || static_cast<std::size_t>(in_idx) >= input.size()) {
          return Status::invalid_argument(
              "input index " + std::to_string(in_idx) + " out of range [0, " +
              std::to_string(input.size()) + ")" + at_pc(pc));
        }
        const std::int64_t out_idx =
            as_int(locals_[static_cast<std::size_t>(insn.arg)]);
        if (out_idx < 0 || out_idx > limits_.max_output_index) {
          return Status::invalid_argument("output index " +
                                          std::to_string(out_idx) +
                                          " out of range" + at_pc(pc));
        }
        touch_output(out_idx) = input[static_cast<std::size_t>(in_idx)];
        break;
      }
      case Op::kMod: {
        const std::int64_t y = as_int(pop());
        const std::int64_t x = as_int(pop());
        if (y == 0) {
          return Status::invalid_argument("modulo by zero" + at_pc(pc));
        }
        push(from_int(x % y));
        break;
      }
      case Op::kNeg: {
        const Value a = pop();
        push(a.kind == Kind::kDouble ? from_double(-a.d)
                                                 : from_int(-as_int(a)));
        break;
      }
      case Op::kNot:
        push(from_int(truthy(pop()) ? 0 : 1));
        break;
      case Op::kBitNot:
        push(from_int(~as_int(pop())));
        break;
      case Op::kBitAnd: {
        const std::int64_t y = as_int(pop()), x = as_int(pop());
        push(from_int(x & y));
        break;
      }
      case Op::kBitOr: {
        const std::int64_t y = as_int(pop()), x = as_int(pop());
        push(from_int(x | y));
        break;
      }
      case Op::kBitXor: {
        const std::int64_t y = as_int(pop()), x = as_int(pop());
        push(from_int(x ^ y));
        break;
      }
      case Op::kShl: {
        const std::int64_t y = as_int(pop()), x = as_int(pop());
        if (y < 0 || y > 63) {
          return Status::invalid_argument("shift amount out of range" + at_pc(pc));
        }
        push(from_int(
            static_cast<std::int64_t>(static_cast<std::uint64_t>(x) << y)));
        break;
      }
      case Op::kShr: {
        const std::int64_t y = as_int(pop()), x = as_int(pop());
        if (y < 0 || y > 63) {
          return Status::invalid_argument("shift amount out of range" + at_pc(pc));
        }
        push(from_int(x >> y));
        break;
      }

      case Op::kLt:
      case Op::kLe:
      case Op::kGt:
      case Op::kGe:
      case Op::kEq:
      case Op::kNe: {
        const Value b = pop();
        const Value a = pop();
        const bool floating =
            a.kind == Kind::kDouble || b.kind == Kind::kDouble;
        const bool r = compare(static_cast<int>(insn.op) -
                                   static_cast<int>(Op::kLt),
                               floating, as_double(a), as_double(b), as_int(a),
                               as_int(b));
        push(from_int(r ? 1 : 0));
        break;
      }

      case Op::kCmpJmpIfFalse:
      case Op::kCmpJmpIfTrue: {
        const Value b = pop();
        const Value a = pop();
        const bool floating =
            a.kind == Kind::kDouble || b.kind == Kind::kDouble;
        const bool r = compare(insn.arg2 & 7, floating, as_double(a),
                               as_double(b), as_int(a), as_int(b));
        if (r == (insn.op == Op::kCmpJmpIfTrue)) {
          if (out_of_fuel()) return fuel_error();
          pc = static_cast<std::size_t>(insn.arg);
          continue;
        }
        break;
      }
      case Op::kCmpImmJmpIfFalse:
      case Op::kCmpImmJmpIfTrue: {
        const Value a = pop();
        const bool imm_float = (insn.arg2 & kCmpImmFloatBit) != 0;
        const bool floating = a.kind == Kind::kDouble || imm_float;
        const double fy =
            imm_float ? insn.imm_f : static_cast<double>(insn.imm_i);
        const bool r = compare(insn.arg2 & 7, floating, as_double(a), fy,
                               as_int(a), insn.imm_i);
        if (r == (insn.op == Op::kCmpImmJmpIfTrue)) {
          if (out_of_fuel()) return fuel_error();
          pc = static_cast<std::size_t>(insn.arg);
          continue;
        }
        break;
      }

      case Op::kToInt: {
        Value& top = sp[-1];
        if (top.kind == Kind::kDouble) {
          top = from_int(static_cast<std::int64_t>(top.d));
        }
        break;
      }
      case Op::kToDouble: {
        Value& top = sp[-1];
        if (top.kind == Kind::kInt) {
          top = from_double(static_cast<double>(top.i));
        }
        break;
      }
      case Op::kToBool: {
        Value& top = sp[-1];
        top = from_int(truthy(top) ? 1 : 0);
        break;
      }

      case Op::kCallBuiltin: {
        const int argc = insn.arg2;
        double args[2] = {0.0, 0.0};
        for (int i = argc - 1; i >= 0; --i) args[i] = as_double(pop());
        double r = 0.0;
        switch (insn.arg) {
          case 0: r = std::abs(args[0]); break;           // abs
          case 1: r = std::min(args[0], args[1]); break;  // min
          case 2: r = std::max(args[0], args[1]); break;  // max
          case 3: r = std::floor(args[0]); break;         // floor
          case 4: r = std::ceil(args[0]); break;          // ceil
          case 5:                                          // sqrt
            if (args[0] < 0) {
              return Status::invalid_argument("sqrt of negative value" +
                                              at_pc(pc));
            }
            r = std::sqrt(args[0]);
            break;
          default:
            return Status::internal("unknown builtin" + at_pc(pc));
        }
        push(from_double(r));
        break;
      }
      case Op::kJmp:
        if (out_of_fuel()) return fuel_error();
        pc = static_cast<std::size_t>(insn.arg);
        continue;
      case Op::kJmpIfFalse:
        if (!truthy(pop())) {
          if (out_of_fuel()) return fuel_error();
          pc = static_cast<std::size_t>(insn.arg);
          continue;
        }
        break;
      case Op::kJmpIfTrue:
        if (truthy(pop())) {
          if (out_of_fuel()) return fuel_error();
          pc = static_cast<std::size_t>(insn.arg);
          continue;
        }
        break;

      case Op::kReturn:
        if (out_of_fuel()) return fuel_error();
        result.return_value = as_double(pop());
        pc = end;
        continue;
      case Op::kHalt:
        pc = end;
        continue;
    }
    ++pc;
  }
  if (out_of_fuel()) return fuel_error();

  result.instructions_executed = fuel;
  // The touched-list records first-write order; the contract is ascending
  // slot order. The list is small (one entry per written slot).
  std::sort(out_touched_.begin(), out_touched_.end());
  for (const std::int32_t idx : out_touched_) {
    result.outputs.emplace_back(idx, out_samples_[static_cast<std::size_t>(idx)]);
  }
  return Status::ok();
}

}  // namespace dproc::ecode
