// The two interpreter tiers share one handler body: vm_dispatch.inc is
// included twice below, once compiled as the portable switch loop
// (run_switch, the reference interpreter) and once as a computed-goto
// threaded loop (run_threaded) when the toolchain supports GNU
// labels-as-values and the build enables DPROC_VM_THREADED. Keeping the
// handlers in a single file makes divergence between the tiers a merge
// conflict instead of a latent bug; the differential fuzz harness
// (tests/fuzz_test.cpp) additionally pins outputs, status and fuel equal.
#include "dproc/ecode/vm.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#if defined(DPROC_VM_THREADED) && (defined(__GNUC__) || defined(__clang__))
#define DPROC_VM_HAS_THREADED 1
#else
#define DPROC_VM_HAS_THREADED 0
#endif

namespace dproc::ecode {

namespace {

std::string at_pc(std::size_t pc) {
  return " (pc=" + std::to_string(pc) + ")";
}

/// A kSample operand reached an int/double/bool context. Historically the
/// converters coerced samples to 0/false, so a type-confused filter (raw
/// sample compared against an int) evaluated to a wrong-but-valid verdict;
/// now it errors like the other runtime failures and d-mon fails open.
Status sample_operand_error(std::size_t pc) {
  return Status::invalid_argument("sample operand in numeric context" +
                                  at_pc(pc));
}

// Comparison predicate for both the plain kLt..kNe block and the fused
// compare-and-branch superinstructions; `which` is the offset from kLt.
bool compare_values(int which, bool floating, double fx, double fy,
                    std::int64_t ix, std::int64_t iy) {
  if (floating) {
    switch (which) {
      case 0: return fx < fy;
      case 1: return fx <= fy;
      case 2: return fx > fy;
      case 3: return fx >= fy;
      case 4: return fx == fy;
      case 5: return fx != fy;
      default: return false;
    }
  }
  switch (which) {
    case 0: return ix < iy;
    case 1: return ix <= iy;
    case 2: return ix > iy;
    case 3: return ix >= iy;
    case 4: return ix == iy;
    case 5: return ix != iy;
    default: return false;
  }
}

}  // namespace

void Vm::ensure_output_slot(std::size_t idx) {
  const std::size_t needed = idx + 1;
  if (out_samples_.size() >= needed) return;
  std::size_t grown = std::max(needed, out_samples_.size() * 2);
  grown = std::min(grown,
                   static_cast<std::size_t>(limits_.max_output_index) + 1);
  out_samples_.resize(grown);
  out_written_.resize(grown, 0);
  // The touched-list can hold one entry per dense slot; reserving it to the
  // same bound here keeps the first-touch push_back in touch_output() from
  // allocating mid-run (all growth happens on this cold path).
  out_touched_.reserve(grown);
}

bool Vm::threaded_available() { return DPROC_VM_HAS_THREADED != 0; }

Result<FilterResult> Vm::run(const Bytecode& code,
                             std::span<const Sample> input) {
  FilterResult result;
  if (Status status = run(code, input, result); !status) return status;
  return result;
}

Status Vm::run(const Bytecode& code, std::span<const Sample> input,
               FilterResult& result) {
#if DPROC_VM_HAS_THREADED
  if (dispatch_ != VmDispatch::kSwitch) {
    return run_threaded(code, input, result);
  }
#endif
  return run_switch(code, input, result);
}

// --- the interpreter body, once per dispatch tier --------------------------

#define DPROC_VM_IMPL run_switch
#define DPROC_VM_THREADED_IMPL 0
#include "vm_dispatch.inc"
#undef DPROC_VM_IMPL
#undef DPROC_VM_THREADED_IMPL

#if DPROC_VM_HAS_THREADED

#define DPROC_VM_IMPL run_threaded
#define DPROC_VM_THREADED_IMPL 1
#include "vm_dispatch.inc"
#undef DPROC_VM_IMPL
#undef DPROC_VM_THREADED_IMPL

#else

// Portable builds: the threaded entry point is the switch loop.
Status Vm::run_threaded(const Bytecode& code, std::span<const Sample> input,
                        FilterResult& result) {
  return run_switch(code, input, result);
}

#endif  // DPROC_VM_HAS_THREADED

}  // namespace dproc::ecode
