#include "dproc/ecode/printer.hpp"

#include <sstream>

namespace dproc::ecode {

namespace {

const char* binop_spelling(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kEq: return "==";
    case BinaryOp::kNe: return "!=";
    case BinaryOp::kLogicalAnd: return "&&";
    case BinaryOp::kLogicalOr: return "||";
    case BinaryOp::kBitAnd: return "&";
    case BinaryOp::kBitOr: return "|";
    case BinaryOp::kBitXor: return "^";
    case BinaryOp::kShl: return "<<";
    case BinaryOp::kShr: return ">>";
  }
  return "?";
}

class Printer {
 public:
  std::string stmt_list(const std::vector<StmtPtr>& statements) {
    for (const auto& stmt : statements) print_stmt(*stmt);
    return out_.str();
  }

  std::string expression(const Expr& expr) {
    print_expr(expr);
    return out_.str();
  }

 private:
  void indent() {
    for (int i = 0; i < depth_; ++i) out_ << "  ";
  }

  void print_stmt(const Stmt& stmt) {
    switch (stmt.kind) {
      case Stmt::Kind::kExpr:
        indent();
        print_expr(*stmt.expr);
        out_ << ";\n";
        return;
      case Stmt::Kind::kVarDecl:
        indent();
        out_ << to_string(stmt.decl_type) << " " << stmt.name;
        if (stmt.expr) {
          out_ << " = ";
          print_expr(*stmt.expr);
        }
        out_ << ";\n";
        return;
      case Stmt::Kind::kBlock:
        indent();
        out_ << "{\n";
        ++depth_;
        for (const auto& child : stmt.body) print_stmt(*child);
        --depth_;
        indent();
        out_ << "}\n";
        return;
      case Stmt::Kind::kIf:
        indent();
        out_ << "if (";
        print_expr(*stmt.expr);
        out_ << ")\n";
        print_branch(*stmt.then_branch);
        if (stmt.else_branch) {
          indent();
          out_ << "else\n";
          print_branch(*stmt.else_branch);
        }
        return;
      case Stmt::Kind::kFor:
        indent();
        out_ << "for (";
        if (stmt.init) {
          if (stmt.init->kind == Stmt::Kind::kVarDecl) {
            out_ << to_string(stmt.init->decl_type) << " " << stmt.init->name;
            if (stmt.init->expr) {
              out_ << " = ";
              print_expr(*stmt.init->expr);
            }
          } else if (stmt.init->expr) {
            print_expr(*stmt.init->expr);
          }
        }
        out_ << "; ";
        if (stmt.expr) print_expr(*stmt.expr);
        out_ << "; ";
        if (stmt.step) print_expr(*stmt.step);
        out_ << ")\n";
        print_branch(*stmt.loop_body);
        return;
      case Stmt::Kind::kWhile:
        indent();
        out_ << "while (";
        print_expr(*stmt.expr);
        out_ << ")\n";
        print_branch(*stmt.loop_body);
        return;
      case Stmt::Kind::kReturn:
        indent();
        out_ << "return";
        if (stmt.expr) {
          out_ << " ";
          print_expr(*stmt.expr);
        }
        out_ << ";\n";
        return;
      case Stmt::Kind::kBreak:
        indent();
        out_ << "break;\n";
        return;
      case Stmt::Kind::kContinue:
        indent();
        out_ << "continue;\n";
        return;
    }
  }

  void print_branch(const Stmt& stmt) {
    if (stmt.kind == Stmt::Kind::kBlock) {
      print_stmt(stmt);
    } else {
      ++depth_;
      print_stmt(stmt);
      --depth_;
    }
  }

  /// Fully parenthesized expressions: correctness without a precedence
  /// re-derivation, and the round-trip property still holds.
  void print_expr(const Expr& expr) {
    switch (expr.kind) {
      case Expr::Kind::kIntLit:
        out_ << expr.int_value;
        return;
      case Expr::Kind::kFloatLit: {
        std::ostringstream value;
        value.precision(17);
        value << expr.float_value;
        out_ << value.str();
        // Keep it lexing as a float literal.
        const std::string rendered = value.str();
        if (rendered.find('.') == std::string::npos &&
            rendered.find('e') == std::string::npos &&
            rendered.find("inf") == std::string::npos) {
          out_ << ".0";
        }
        return;
      }
      case Expr::Kind::kIdent:
        out_ << expr.name;
        return;
      case Expr::Kind::kUnary:
        switch (expr.unary_op) {
          case UnaryOp::kNeg: out_ << "-"; break;
          case UnaryOp::kNot: out_ << "!"; break;
          case UnaryOp::kBitNot: out_ << "~"; break;
        }
        out_ << "(";
        print_expr(*expr.a);
        out_ << ")";
        return;
      case Expr::Kind::kBinary:
        out_ << "(";
        print_expr(*expr.a);
        out_ << " " << binop_spelling(expr.bin_op) << " ";
        print_expr(*expr.b);
        out_ << ")";
        return;
      case Expr::Kind::kAssign:
        print_expr(*expr.a);
        out_ << " " << (expr.compound ? binop_spelling(expr.bin_op) : "")
             << "= ";
        print_expr(*expr.b);
        return;
      case Expr::Kind::kTernary:
        out_ << "(";
        print_expr(*expr.a);
        out_ << " ? ";
        print_expr(*expr.b);
        out_ << " : ";
        print_expr(*expr.c);
        out_ << ")";
        return;
      case Expr::Kind::kIndex:
        print_expr(*expr.a);
        out_ << "[";
        print_expr(*expr.b);
        out_ << "]";
        return;
      case Expr::Kind::kField:
        print_expr(*expr.a);
        out_ << "." << expr.name;
        return;
      case Expr::Kind::kIncDec:
        if (expr.prefix) out_ << (expr.increment ? "++" : "--");
        print_expr(*expr.a);
        if (!expr.prefix) out_ << (expr.increment ? "++" : "--");
        return;
      case Expr::Kind::kCall: {
        out_ << expr.name << "(";
        bool first = true;
        for (const auto& arg : expr.args) {
          if (!first) out_ << ", ";
          first = false;
          print_expr(*arg);
        }
        out_ << ")";
        return;
      }
    }
  }

  std::ostringstream out_;
  int depth_ = 0;
};

}  // namespace

std::string to_source(const Program& program) {
  return Printer{}.stmt_list(program.statements);
}

std::string to_source(const Expr& expr) { return Printer{}.expression(expr); }

}  // namespace dproc::ecode
