#include "dproc/ecode/sema.hpp"

namespace dproc::ecode {

const std::vector<BuiltinFn>& builtin_functions() {
  // Sketch entries start at kSketchBuiltinBase; keep the math block in
  // front of them (fold.cpp folds by index, compiler subtracts the base).
  static const std::vector<BuiltinFn> kBuiltins{
      {"abs", 1}, {"min", 2}, {"max", 2},
      {"floor", 1}, {"ceil", 1}, {"sqrt", 1},
      {"topk", 1, true},      // estimated count of the rank-th heaviest key
      {"topkid", 1, true},    // key of the rank-th heaviest entry
      {"cmlookup", 1, true},  // count-min estimate for an arbitrary key
      {"skmerge", 1, true},   // fold auxiliary sketch [i] into the primary
  };
  return kBuiltins;
}

int find_builtin(const std::string& name) {
  const auto& table = builtin_functions();
  for (std::size_t i = 0; i < table.size(); ++i) {
    if (name == table[i].name) return static_cast<int>(i);
  }
  return -1;
}

namespace {
bool field_from_name(const std::string& name, SampleField& field, Type& type) {
  if (name == "value") {
    field = SampleField::kValue;
    type = Type::kDouble;
    return true;
  }
  if (name == "last_value_sent") {
    field = SampleField::kLastValueSent;
    type = Type::kDouble;
    return true;
  }
  if (name == "id") {
    field = SampleField::kId;
    type = Type::kInt;
    return true;
  }
  if (name == "timestamp") {
    field = SampleField::kTimestamp;
    type = Type::kInt;
    return true;
  }
  return false;
}

/// True when the expression reads from the read-only `input` array.
bool rooted_in_input(const Expr& expr) {
  const Expr* e = &expr;
  while (e->kind == Expr::Kind::kField || e->kind == Expr::Kind::kIndex) {
    e = e->a.get();
  }
  return e->kind == Expr::Kind::kIdent &&
         e->resolution == Resolution::kInputArray;
}
}  // namespace

Status Sema::analyze(Program& program) {
  scopes_.clear();
  next_slot_ = 0;
  loop_depth_ = 0;
  diagnostics_.clear();

  push_scope();
  for (auto& stmt : program.statements) check_stmt(*stmt);
  pop_scope();

  if (!diagnostics_.empty()) {
    return Status::invalid_argument(format_diagnostics(diagnostics_));
  }
  program.local_slot_count = static_cast<std::size_t>(next_slot_);
  return Status::ok();
}

void Sema::push_scope() { scopes_.emplace_back(); }
void Sema::pop_scope() { scopes_.pop_back(); }

int Sema::declare(const std::string& name, Type type, SourceLoc loc) {
  for (const Local& local : scopes_.back()) {
    if (local.name == name) {
      error(loc, "redeclaration of '" + name + "'");
      return local.slot;
    }
  }
  if (name == "input" || name == "output") {
    error(loc, "'" + name + "' is a builtin array and cannot be declared");
  }
  const int slot = next_slot_++;
  scopes_.back().push_back(Local{name, type, slot});
  return slot;
}

void Sema::check_stmt(Stmt& stmt) {
  switch (stmt.kind) {
    case Stmt::Kind::kExpr:
      check_expr(*stmt.expr);
      return;
    case Stmt::Kind::kVarDecl: {
      if (stmt.expr) {
        const Type init = check_expr(*stmt.expr);
        if (stmt.decl_type == Type::kSample) {
          if (init != Type::kSample && init != Type::kUnknown) {
            error(stmt.loc, "cannot initialize sample from " +
                                std::string{to_string(init)});
          }
        } else if (!is_numeric(init) && init != Type::kUnknown) {
          error(stmt.loc, "cannot initialize " +
                              std::string{to_string(stmt.decl_type)} +
                              " from " + to_string(init));
        }
      }
      stmt.local_slot = declare(stmt.name, stmt.decl_type, stmt.loc);
      return;
    }
    case Stmt::Kind::kBlock:
      push_scope();
      for (auto& s : stmt.body) check_stmt(*s);
      pop_scope();
      return;
    case Stmt::Kind::kIf: {
      const Type cond = check_expr(*stmt.expr);
      if (!is_numeric(cond) && cond != Type::kUnknown) {
        error(stmt.expr->loc, "if condition must be numeric, got " +
                                  std::string{to_string(cond)});
      }
      check_stmt(*stmt.then_branch);
      if (stmt.else_branch) check_stmt(*stmt.else_branch);
      return;
    }
    case Stmt::Kind::kFor: {
      push_scope();
      if (stmt.init) check_stmt(*stmt.init);
      if (stmt.expr) {
        const Type cond = check_expr(*stmt.expr);
        if (!is_numeric(cond) && cond != Type::kUnknown) {
          error(stmt.expr->loc, "for condition must be numeric");
        }
      }
      if (stmt.step) check_expr(*stmt.step);
      ++loop_depth_;
      check_stmt(*stmt.loop_body);
      --loop_depth_;
      pop_scope();
      return;
    }
    case Stmt::Kind::kWhile: {
      const Type cond = check_expr(*stmt.expr);
      if (!is_numeric(cond) && cond != Type::kUnknown) {
        error(stmt.expr->loc, "while condition must be numeric");
      }
      ++loop_depth_;
      check_stmt(*stmt.loop_body);
      --loop_depth_;
      return;
    }
    case Stmt::Kind::kReturn:
      if (stmt.expr) {
        const Type t = check_expr(*stmt.expr);
        if (!is_numeric(t) && t != Type::kUnknown) {
          error(stmt.loc, "return value must be numeric, got " +
                              std::string{to_string(t)});
        }
      }
      return;
    case Stmt::Kind::kBreak:
    case Stmt::Kind::kContinue:
      if (loop_depth_ == 0) {
        error(stmt.loc, stmt.kind == Stmt::Kind::kBreak
                            ? "'break' outside of a loop"
                            : "'continue' outside of a loop");
      }
      return;
  }
}

void Sema::resolve_ident(Expr& expr) {
  // Locals shadow builtins shadow constants.
  for (auto scope = scopes_.rbegin(); scope != scopes_.rend(); ++scope) {
    for (const Local& local : *scope) {
      if (local.name == expr.name) {
        expr.resolution = Resolution::kLocal;
        expr.local_slot = local.slot;
        expr.type = local.type;
        return;
      }
    }
  }
  if (expr.name == "input") {
    expr.resolution = Resolution::kInputArray;
    expr.type = Type::kUnknown;  // only meaningful under an index
    return;
  }
  if (expr.name == "output") {
    expr.resolution = Resolution::kOutputArray;
    expr.type = Type::kUnknown;
    return;
  }
  auto constant = env_.constants.find(expr.name);
  if (constant != env_.constants.end()) {
    expr.resolution = Resolution::kConstant;
    expr.const_value = constant->second;
    expr.type = Type::kInt;
    return;
  }
  error(expr.loc, "use of undeclared identifier '" + expr.name + "'");
}

Type Sema::check_call(Expr& expr) {
  expr.builtin = find_builtin(expr.name);
  if (expr.builtin < 0) {
    error(expr.loc, "unknown function '" + expr.name +
                        "' (builtins: abs, min, max, floor, ceil, sqrt)");
    expr.type = Type::kUnknown;
    return expr.type;
  }
  const BuiltinFn& fn = builtin_functions()[static_cast<std::size_t>(expr.builtin)];
  if (fn.sketch && !env_.sketch_builtins) {
    error(expr.loc, "'" + expr.name +
                        "' requires sketch support, which this publisher "
                        "does not enable");
    expr.type = Type::kUnknown;
    return expr.type;
  }
  if (static_cast<int>(expr.args.size()) != fn.arity) {
    error(expr.loc, "'" + expr.name + "' takes " + std::to_string(fn.arity) +
                        " argument(s), got " + std::to_string(expr.args.size()));
  }
  for (auto& arg : expr.args) {
    const Type t = check_expr(*arg);
    if (!is_numeric(t) && t != Type::kUnknown) {
      error(arg->loc, "'" + expr.name + "' requires numeric arguments");
    }
  }
  expr.type = Type::kDouble;
  return expr.type;
}

Type Sema::check_index(Expr& expr) {
  // Resolve the base directly (not via check_expr) so bare-array diagnosis
  // below stays limited to non-index contexts.
  if (expr.a->kind == Expr::Kind::kIdent) resolve_ident(*expr.a);
  if (expr.a->kind != Expr::Kind::kIdent ||
      (expr.a->resolution != Resolution::kInputArray &&
       expr.a->resolution != Resolution::kOutputArray)) {
    error(expr.loc, "only 'input' and 'output' can be indexed");
    expr.type = Type::kUnknown;
    return expr.type;
  }
  const Type index = check_expr(*expr.b);
  if (index != Type::kInt && index != Type::kUnknown) {
    error(expr.b->loc, "array index must be an integer, got " +
                           std::string{to_string(index)});
  }
  expr.type = Type::kSample;
  return expr.type;
}

Type Sema::check_field(Expr& expr) {
  const Type base = check_expr(*expr.a);
  if (base != Type::kSample && base != Type::kUnknown) {
    error(expr.loc, "'." + expr.name + "' requires a sample, got " +
                        std::string{to_string(base)});
    expr.type = Type::kUnknown;
    return expr.type;
  }
  SampleField field{};
  Type type{};
  if (!field_from_name(expr.name, field, type)) {
    error(expr.loc, "sample has no field '" + expr.name +
                        "' (fields: value, last_value_sent, id, timestamp)");
    expr.type = Type::kUnknown;
    return expr.type;
  }
  expr.field = field;
  expr.type = type;
  return expr.type;
}

Type Sema::check_lvalue(Expr& expr) {
  const Type type = check_expr(expr);
  switch (expr.kind) {
    case Expr::Kind::kIdent:
      if (expr.resolution == Resolution::kLocal) return type;
      error(expr.loc, "'" + expr.name + "' is not assignable");
      return Type::kUnknown;
    case Expr::Kind::kIndex:
      if (expr.a->resolution == Resolution::kOutputArray) return type;
      error(expr.loc, "'input' is read-only");
      return Type::kUnknown;
    case Expr::Kind::kField: {
      if (rooted_in_input(expr)) {
        error(expr.loc, "'input' is read-only");
        return Type::kUnknown;
      }
      // Assignable fields: output[e].f, or a local sample variable's field.
      const Expr& base = *expr.a;
      const bool output_field =
          base.kind == Expr::Kind::kIndex &&
          base.a->resolution == Resolution::kOutputArray;
      const bool local_sample_field =
          base.kind == Expr::Kind::kIdent &&
          base.resolution == Resolution::kLocal && base.type == Type::kSample;
      if (!output_field && !local_sample_field) {
        error(expr.loc, "field is not assignable here");
        return Type::kUnknown;
      }
      return type;
    }
    default:
      error(expr.loc, "expression is not assignable");
      return Type::kUnknown;
  }
}

Type Sema::check_assign(Expr& expr) {
  const Type target = check_lvalue(*expr.a);
  const Type value = check_expr(*expr.b);

  if (expr.compound) {
    if ((!is_numeric(target) && target != Type::kUnknown) ||
        (!is_numeric(value) && value != Type::kUnknown)) {
      error(expr.loc, "compound assignment requires numeric operands");
    }
    if ((expr.bin_op == BinaryOp::kMod) &&
        (target == Type::kDouble || value == Type::kDouble)) {
      error(expr.loc, "'%=' requires integer operands");
    }
    expr.type = target;
    return expr.type;
  }

  if (target == Type::kSample) {
    if (value != Type::kSample && value != Type::kUnknown) {
      error(expr.loc, "cannot assign " + std::string{to_string(value)} +
                          " to a sample");
    }
  } else if (is_numeric(target)) {
    if (!is_numeric(value) && value != Type::kUnknown) {
      error(expr.loc, "cannot assign " + std::string{to_string(value)} +
                          " to " + to_string(target));
    }
  }
  expr.type = target;
  return expr.type;
}

Type Sema::check_expr(Expr& expr) {
  switch (expr.kind) {
    case Expr::Kind::kIntLit:
      expr.type = Type::kInt;
      return expr.type;
    case Expr::Kind::kFloatLit:
      expr.type = Type::kDouble;
      return expr.type;
    case Expr::Kind::kIdent:
      resolve_ident(expr);
      if (expr.resolution == Resolution::kInputArray ||
          expr.resolution == Resolution::kOutputArray) {
        error(expr.loc, "'" + expr.name + "' can only be used with an index");
      }
      return expr.type;
    case Expr::Kind::kIndex:
      return check_index(expr);
    case Expr::Kind::kCall:
      return check_call(expr);
    case Expr::Kind::kField:
      return check_field(expr);
    case Expr::Kind::kUnary: {
      const Type operand = check_expr(*expr.a);
      if (!is_numeric(operand) && operand != Type::kUnknown) {
        error(expr.loc, "unary operator requires a numeric operand");
        expr.type = Type::kUnknown;
        return expr.type;
      }
      switch (expr.unary_op) {
        case UnaryOp::kNeg:
          expr.type = operand;
          break;
        case UnaryOp::kNot:
          expr.type = Type::kInt;
          break;
        case UnaryOp::kBitNot:
          if (operand == Type::kDouble) {
            error(expr.loc, "'~' requires an integer operand");
          }
          expr.type = Type::kInt;
          break;
      }
      return expr.type;
    }
    case Expr::Kind::kBinary: {
      const Type a = check_expr(*expr.a);
      const Type b = check_expr(*expr.b);
      if ((!is_numeric(a) && a != Type::kUnknown) ||
          (!is_numeric(b) && b != Type::kUnknown)) {
        error(expr.loc, "binary operator requires numeric operands");
        expr.type = Type::kUnknown;
        return expr.type;
      }
      switch (expr.bin_op) {
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kDiv:
          expr.type = unify_numeric(a, b);
          break;
        case BinaryOp::kMod:
        case BinaryOp::kBitAnd:
        case BinaryOp::kBitOr:
        case BinaryOp::kBitXor:
        case BinaryOp::kShl:
        case BinaryOp::kShr:
          if (a == Type::kDouble || b == Type::kDouble) {
            error(expr.loc, "operator requires integer operands");
          }
          expr.type = Type::kInt;
          break;
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
        case BinaryOp::kEq:
        case BinaryOp::kNe:
        case BinaryOp::kLogicalAnd:
        case BinaryOp::kLogicalOr:
          expr.type = Type::kInt;
          break;
      }
      return expr.type;
    }
    case Expr::Kind::kAssign:
      return check_assign(expr);
    case Expr::Kind::kTernary: {
      const Type cond = check_expr(*expr.a);
      if (!is_numeric(cond) && cond != Type::kUnknown) {
        error(expr.a->loc, "ternary condition must be numeric");
      }
      const Type t = check_expr(*expr.b);
      const Type f = check_expr(*expr.c);
      if (t == Type::kSample && f == Type::kSample) {
        expr.type = Type::kSample;
      } else if (is_numeric(t) && is_numeric(f)) {
        expr.type = unify_numeric(t, f);
      } else if (t == Type::kUnknown || f == Type::kUnknown) {
        expr.type = Type::kUnknown;
      } else {
        error(expr.loc, "ternary branches have incompatible types");
        expr.type = Type::kUnknown;
      }
      return expr.type;
    }
    case Expr::Kind::kIncDec: {
      const Type target = check_lvalue(*expr.a);
      if (expr.a->kind != Expr::Kind::kIdent ||
          expr.a->resolution != Resolution::kLocal) {
        error(expr.loc, "'++'/'--' requires a declared local variable");
      } else if (!is_numeric(target) && target != Type::kUnknown) {
        error(expr.loc, "'++'/'--' requires a numeric variable");
      }
      expr.type = target;
      return expr.type;
    }
  }
  expr.type = Type::kUnknown;
  return expr.type;
}

}  // namespace dproc::ecode
