#include "dproc/ecode/lexer.hpp"

#include <cctype>
#include <charconv>
#include <cstdlib>
#include <map>

namespace dproc::ecode {

const char* to_string(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEof: return "<eof>";
    case TokenKind::kIntLiteral: return "integer literal";
    case TokenKind::kFloatLiteral: return "float literal";
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kKwInt: return "'int'";
    case TokenKind::kKwLong: return "'long'";
    case TokenKind::kKwDouble: return "'double'";
    case TokenKind::kKwSample: return "'sample'";
    case TokenKind::kKwIf: return "'if'";
    case TokenKind::kKwElse: return "'else'";
    case TokenKind::kKwFor: return "'for'";
    case TokenKind::kKwWhile: return "'while'";
    case TokenKind::kKwReturn: return "'return'";
    case TokenKind::kKwBreak: return "'break'";
    case TokenKind::kKwContinue: return "'continue'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kComma: return "','";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kQuestion: return "'?'";
    case TokenKind::kColon: return "':'";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kPercent: return "'%'";
    case TokenKind::kAssign: return "'='";
    case TokenKind::kPlusAssign: return "'+='";
    case TokenKind::kMinusAssign: return "'-='";
    case TokenKind::kStarAssign: return "'*='";
    case TokenKind::kSlashAssign: return "'/='";
    case TokenKind::kPercentAssign: return "'%='";
    case TokenKind::kPlusPlus: return "'++'";
    case TokenKind::kMinusMinus: return "'--'";
    case TokenKind::kEq: return "'=='";
    case TokenKind::kNe: return "'!='";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kAndAnd: return "'&&'";
    case TokenKind::kOrOr: return "'||'";
    case TokenKind::kNot: return "'!'";
    case TokenKind::kAmp: return "'&'";
    case TokenKind::kPipe: return "'|'";
    case TokenKind::kCaret: return "'^'";
    case TokenKind::kTilde: return "'~'";
    case TokenKind::kShl: return "'<<'";
    case TokenKind::kShr: return "'>>'";
  }
  return "<unknown>";
}

namespace {
const std::map<std::string_view, TokenKind>& keywords() {
  static const std::map<std::string_view, TokenKind> kw{
      {"int", TokenKind::kKwInt},         {"long", TokenKind::kKwLong},
      {"double", TokenKind::kKwDouble},   {"sample", TokenKind::kKwSample},
      {"if", TokenKind::kKwIf},           {"else", TokenKind::kKwElse},
      {"for", TokenKind::kKwFor},         {"while", TokenKind::kKwWhile},
      {"return", TokenKind::kKwReturn},   {"break", TokenKind::kKwBreak},
      {"continue", TokenKind::kKwContinue},
  };
  return kw;
}
}  // namespace

char Lexer::peek(std::size_t ahead) const {
  return pos_ + ahead < source_.size() ? source_[pos_ + ahead] : '\0';
}

char Lexer::advance() {
  const char c = source_[pos_++];
  if (c == '\n') {
    ++loc_.line;
    loc_.column = 1;
  } else {
    ++loc_.column;
  }
  return c;
}

bool Lexer::match(char expected) {
  if (at_end() || peek() != expected) return false;
  advance();
  return true;
}

void Lexer::skip_whitespace_and_comments() {
  while (!at_end()) {
    const char c = peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
    } else if (c == '/' && peek(1) == '/') {
      while (!at_end() && peek() != '\n') advance();
    } else if (c == '/' && peek(1) == '*') {
      const SourceLoc start = loc_;
      advance();
      advance();
      while (!at_end() && !(peek() == '*' && peek(1) == '/')) advance();
      if (at_end()) {
        diagnostics_.push_back({start, "unterminated block comment"});
        return;
      }
      advance();
      advance();
    } else {
      return;
    }
  }
}

Token Lexer::lex_number() {
  const SourceLoc start = loc_;
  const std::size_t begin = pos_;
  bool is_float = false;

  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    advance();
    advance();
    while (std::isxdigit(static_cast<unsigned char>(peek()))) advance();
    Token tok{TokenKind::kIntLiteral, start, {}, 0, 0.0};
    const auto text = source_.substr(begin + 2, pos_ - begin - 2);
    std::uint64_t value = 0;
    auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(),
                                     value, 16);
    if (ec != std::errc{} || ptr != text.data() + text.size()) {
      diagnostics_.push_back({start, "malformed hexadecimal literal"});
    }
    tok.int_value = static_cast<std::int64_t>(value);
    return tok;
  }

  while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
  if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
    is_float = true;
    advance();
    while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
  }
  if (peek() == 'e' || peek() == 'E') {
    const char sign = peek(1);
    if (std::isdigit(static_cast<unsigned char>(sign)) ||
        ((sign == '+' || sign == '-') &&
         std::isdigit(static_cast<unsigned char>(peek(2))))) {
      is_float = true;
      advance();  // e
      if (peek() == '+' || peek() == '-') advance();
      while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
    }
  }

  const std::string text{source_.substr(begin, pos_ - begin)};
  Token tok;
  tok.loc = start;
  if (is_float) {
    tok.kind = TokenKind::kFloatLiteral;
    tok.float_value = std::strtod(text.c_str(), nullptr);
  } else {
    tok.kind = TokenKind::kIntLiteral;
    auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), tok.int_value);
    if (ec != std::errc{} || ptr != text.data() + text.size()) {
      diagnostics_.push_back({start, "integer literal out of range: " + text});
    }
  }
  return tok;
}

Token Lexer::lex_identifier() {
  const SourceLoc start = loc_;
  const std::size_t begin = pos_;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_') {
    advance();
  }
  const std::string_view text = source_.substr(begin, pos_ - begin);
  auto kw = keywords().find(text);
  Token tok;
  tok.loc = start;
  if (kw != keywords().end()) {
    tok.kind = kw->second;
  } else {
    tok.kind = TokenKind::kIdentifier;
    tok.text = std::string{text};
  }
  return tok;
}

Result<std::vector<Token>> Lexer::tokenize() {
  std::vector<Token> tokens;
  while (true) {
    skip_whitespace_and_comments();
    if (at_end()) break;
    const char c = peek();
    const SourceLoc start = loc_;

    if (std::isdigit(static_cast<unsigned char>(c))) {
      tokens.push_back(lex_number());
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      tokens.push_back(lex_identifier());
      continue;
    }

    advance();
    TokenKind kind;
    switch (c) {
      case '(': kind = TokenKind::kLParen; break;
      case ')': kind = TokenKind::kRParen; break;
      case '{': kind = TokenKind::kLBrace; break;
      case '}': kind = TokenKind::kRBrace; break;
      case '[': kind = TokenKind::kLBracket; break;
      case ']': kind = TokenKind::kRBracket; break;
      case ';': kind = TokenKind::kSemicolon; break;
      case ',': kind = TokenKind::kComma; break;
      case '.': kind = TokenKind::kDot; break;
      case '?': kind = TokenKind::kQuestion; break;
      case ':': kind = TokenKind::kColon; break;
      case '~': kind = TokenKind::kTilde; break;
      case '^': kind = TokenKind::kCaret; break;
      case '+':
        kind = match('+') ? TokenKind::kPlusPlus
               : match('=') ? TokenKind::kPlusAssign
                            : TokenKind::kPlus;
        break;
      case '-':
        kind = match('-') ? TokenKind::kMinusMinus
               : match('=') ? TokenKind::kMinusAssign
                            : TokenKind::kMinus;
        break;
      case '*':
        kind = match('=') ? TokenKind::kStarAssign : TokenKind::kStar;
        break;
      case '/':
        kind = match('=') ? TokenKind::kSlashAssign : TokenKind::kSlash;
        break;
      case '%':
        kind = match('=') ? TokenKind::kPercentAssign : TokenKind::kPercent;
        break;
      case '=':
        kind = match('=') ? TokenKind::kEq : TokenKind::kAssign;
        break;
      case '!':
        kind = match('=') ? TokenKind::kNe : TokenKind::kNot;
        break;
      case '<':
        kind = match('=') ? TokenKind::kLe
               : match('<') ? TokenKind::kShl
                            : TokenKind::kLt;
        break;
      case '>':
        kind = match('=') ? TokenKind::kGe
               : match('>') ? TokenKind::kShr
                            : TokenKind::kGt;
        break;
      case '&':
        kind = match('&') ? TokenKind::kAndAnd : TokenKind::kAmp;
        break;
      case '|':
        kind = match('|') ? TokenKind::kOrOr : TokenKind::kPipe;
        break;
      default:
        diagnostics_.push_back(
            {start, std::string{"unexpected character '"} + c + "'"});
        continue;
    }
    Token tok;
    tok.kind = kind;
    tok.loc = start;
    tokens.push_back(tok);
  }

  if (!diagnostics_.empty()) {
    return Status::invalid_argument(format_diagnostics(diagnostics_));
  }
  Token eof;
  eof.kind = TokenKind::kEof;
  eof.loc = loc_;
  tokens.push_back(eof);
  return tokens;
}

}  // namespace dproc::ecode
