#include "dproc/workload/iperf.hpp"

#include <stdexcept>

namespace dproc::workload {

IperfSender::IperfSender(net::Nic& nic, net::NodeId dst, IperfConfig config)
    : nic_(nic), dst_(dst), config_(config) {
  if (config_.rate_bps <= 0) {
    throw std::invalid_argument{"IperfConfig rate must be positive"};
  }
}

IperfSender::~IperfSender() { stop(); }

void IperfSender::start() {
  if (running_) return;
  running_ = true;
  schedule_next();
}

void IperfSender::stop() {
  running_ = false;
  next_send_.cancel();
}

void IperfSender::set_rate(double rate_bps) {
  if (rate_bps <= 0) throw std::invalid_argument{"iperf rate must be positive"};
  config_.rate_bps = rate_bps;
}

void IperfSender::schedule_next() {
  const SimDuration gap =
      seconds(static_cast<double>(config_.datagram_bytes) * 8.0 / config_.rate_bps);
  next_send_ = nic_.fabric().engine().schedule_after(gap, [this] {
    if (!running_) return;
    auto payload = net::make_message({}, config_.datagram_bytes);
    nic_.send_datagram(dst_, config_.port, payload, config_.port);
    ++sent_;
    schedule_next();
  });
}

IperfReceiver::IperfReceiver(net::Nic& nic, net::Port port)
    : nic_(nic), checkpoint_time_(nic.fabric().engine().now()) {
  nic_.bind_datagram(port, [this](net::NodeId, net::Port,
                                  const net::MessagePtr& message) {
    bytes_ += message->size();
    ++datagrams_;
  });
}

double IperfReceiver::goodput_bps_since_checkpoint() const {
  const double elapsed =
      (nic_.fabric().engine().now() - checkpoint_time_).sec();
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(bytes_ - checkpoint_bytes_) * 8.0 / elapsed;
}

void IperfReceiver::checkpoint() {
  checkpoint_bytes_ = bytes_;
  checkpoint_time_ = nic_.fabric().engine().now();
}

}  // namespace dproc::workload
