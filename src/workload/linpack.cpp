#include "dproc/workload/linpack.hpp"

namespace dproc::workload {

LinpackTask::LinpackTask(host::Host& host, std::string name)
    : host_(host),
      task_(host.cpu().add_compute_task(std::move(name))),
      started_(host.engine().now()),
      checkpoint_time_(host.engine().now()) {
  // Hardware counters advance continuously; sync them once per second so
  // PMC_MON observes progress without a reader having to ask first.
  pmc_timer_ = host_.engine().schedule_periodic(seconds(1.0),
                                                [this] { sync_pmc(); });
}

LinpackTask::~LinpackTask() {
  pmc_timer_.cancel();
  sync_pmc();
  host_.cpu().remove_task(task_);
}

double LinpackTask::mflops() {
  sync_pmc();
  return host_.cpu().task_mflops(task_);
}

double LinpackTask::mflops_since_checkpoint() {
  sync_pmc();
  const double elapsed = (host_.engine().now() - checkpoint_time_).sec();
  if (elapsed <= 0) return 0.0;
  const SimDuration cpu = host_.cpu().task_cpu_time(task_) - checkpoint_cpu_;
  return host_.cpu().config().mflops_capacity * cpu.sec() / elapsed;
}

void LinpackTask::checkpoint() {
  sync_pmc();
  checkpoint_time_ = host_.engine().now();
  checkpoint_cpu_ = host_.cpu().task_cpu_time(task_);
}

void LinpackTask::sync_pmc() {
  // Attribute hardware events for the work done since the last sync:
  // flops at the machine's peak rate, cache misses at the Pentium Pro-era
  // rough ratio of one miss per ~200 floating point operations.
  const double flops_done = host_.cpu().task_cpu_time(task_).sec() *
                            host_.cpu().config().mflops_capacity * 1e6;
  const double delta = flops_done - pmc_flops_accounted_;
  if (delta <= 0) return;
  pmc_flops_accounted_ = flops_done;
  host_.pmc().increment(host::Pmc::kFlops, static_cast<std::uint64_t>(delta));
  host_.pmc().increment(host::Pmc::kCacheMisses,
                        static_cast<std::uint64_t>(delta / 200.0));
}

MemoryHog::MemoryHog(host::Host& host, std::uint64_t initial_bytes,
                     std::uint64_t grow_bytes, SimDuration grow_interval)
    : host_(host) {
  if (host_.memory().allocate(initial_bytes)) held_ = initial_bytes;
  if (grow_bytes > 0) {
    grow_timer_ = host_.engine().schedule_periodic(
        grow_interval, [this, grow_bytes] {
          if (host_.memory().allocate(grow_bytes)) {
            held_ += grow_bytes;
          } else {
            grow_timer_.cancel();
          }
        });
  }
}

MemoryHog::~MemoryHog() {
  grow_timer_.cancel();
  host_.memory().release(held_);
}

}  // namespace dproc::workload
