#include "dproc/host/battery.hpp"

namespace dproc::host {

Battery::Battery(sim::Engine& engine, Cpu& cpu, net::Nic& nic,
                 BatteryConfig config)
    : engine_(engine),
      cpu_(cpu),
      nic_(nic),
      config_(config),
      last_update_(engine.now()) {}

void Battery::advance() {
  const SimTime now = engine_.now();
  const double dt = (now - last_update_).sec();
  if (dt <= 0) return;
  last_update_ = now;

  // CPU draw: utilization() is a lifetime average; reconstruct the busy
  // seconds in this window from its definition (busy = util * elapsed).
  const double elapsed = (now - SimTime::zero()).sec();
  const SimDuration busy_total = seconds(cpu_.utilization() * elapsed);
  const double busy_dt =
      std::max(0.0, (busy_total - last_cpu_busy_).sec());
  last_cpu_busy_ = busy_total;

  const std::uint64_t nic_bytes =
      nic_.stats().bytes_sent + nic_.stats().bytes_received;
  const double bytes_dt = static_cast<double>(nic_bytes - last_nic_bytes_);
  last_nic_bytes_ = nic_bytes;

  const double joules = config_.idle_watts * dt +
                        config_.cpu_active_watts * busy_dt +
                        config_.nanojoules_per_byte * bytes_dt * 1e-9;
  consumed_joules_ += joules;
  last_watts_ = joules / dt;
}

double Battery::remaining_joules() {
  advance();
  return std::max(0.0, config_.capacity_joules - consumed_joules_);
}

double Battery::level() {
  return remaining_joules() / config_.capacity_joules;
}

double Battery::watts() {
  advance();
  return last_watts_;
}

}  // namespace dproc::host
