#include "dproc/host/cpu.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

namespace dproc::host {

namespace {
// Residual work below this is treated as complete; absorbs float rounding
// from repeated share subtraction.
constexpr double kWorkEpsilonSec = 1e-12;
}  // namespace

Cpu::Cpu(sim::Engine& engine, CpuConfig config)
    : engine_(engine), config_(config), last_update_(engine.now()) {
  if (config_.mflops_capacity <= 0 || config_.clock_hz <= 0) {
    throw std::invalid_argument{"CpuConfig rates must be positive"};
  }
}

TaskId Cpu::add_compute_task(std::string name) {
  advance();
  const TaskId id = next_id_++;
  Task task;
  task.name = std::move(name);
  task.compute_sink = true;
  task.created = engine_.now();
  tasks_.emplace(id, std::move(task));
  reschedule_completion();
  return id;
}

TaskId Cpu::add_server_task(std::string name) {
  advance();
  const TaskId id = next_id_++;
  Task task;
  task.name = std::move(name);
  task.created = engine_.now();
  tasks_.emplace(id, std::move(task));
  reschedule_completion();
  return id;
}

void Cpu::remove_task(TaskId id) {
  advance();
  tasks_.erase(id);
  reschedule_completion();
}

void Cpu::set_task_weight(TaskId id, double weight) {
  if (weight <= 0) throw std::invalid_argument{"task weight must be positive"};
  advance();
  auto it = tasks_.find(id);
  if (it == tasks_.end()) throw std::invalid_argument{"set_task_weight: unknown task"};
  it->second.weight = weight;
  reschedule_completion();
}

double Cpu::task_weight(TaskId id) const {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) throw std::invalid_argument{"task_weight: unknown task"};
  return it->second.weight;
}

void Cpu::submit_work(TaskId id, double cpu_seconds,
                      std::function<void()> on_complete) {
  if (cpu_seconds < 0) {
    throw std::invalid_argument{"submit_work: negative cpu_seconds"};
  }
  advance();
  auto it = tasks_.find(id);
  if (it == tasks_.end()) throw std::invalid_argument{"submit_work: unknown task"};
  if (it->second.compute_sink) {
    throw std::invalid_argument{"submit_work: task is a compute sink"};
  }
  it->second.items.push_back(Task::Item{cpu_seconds, std::move(on_complete)});
  reschedule_completion();
}

std::size_t Cpu::queued_items(TaskId id) const {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) throw std::invalid_argument{"queued_items: unknown task"};
  return it->second.items.size();
}

void Cpu::consume_kernel(SimDuration cpu_time) {
  if (cpu_time < SimDuration::zero()) {
    throw std::invalid_argument{"consume_kernel: negative time"};
  }
  advance();
  kernel_backlog_sec_ += cpu_time.sec();
  kernel_total_ += cpu_time;
  reschedule_completion();
}

void Cpu::consume_kernel_cycles(double cycles) {
  consume_kernel(seconds(cycles / config_.clock_hz));
}

std::size_t Cpu::run_queue_length() const {
  std::size_t n = 0;
  for (const auto& [id, task] : tasks_) {
    if (task.runnable()) ++n;
  }
  return n;
}

double Cpu::runnable_count() const {
  return static_cast<double>(run_queue_length());
}

double Cpu::runnable_weight() const {
  double total = 0.0;
  for (const auto& [id, task] : tasks_) {
    if (task.runnable()) total += task.weight;
  }
  return total;
}

SimDuration Cpu::task_cpu_time(TaskId id) {
  advance();
  auto it = tasks_.find(id);
  if (it == tasks_.end()) throw std::invalid_argument{"task_cpu_time: unknown task"};
  return seconds(it->second.cpu_seconds_done);
}

double Cpu::task_mflops(TaskId id) {
  advance();
  auto it = tasks_.find(id);
  if (it == tasks_.end()) throw std::invalid_argument{"task_mflops: unknown task"};
  const double elapsed = (engine_.now() - it->second.created).sec();
  if (elapsed <= 0) return 0.0;
  return config_.mflops_capacity * it->second.cpu_seconds_done / elapsed;
}

double Cpu::utilization() {
  advance();
  const double elapsed = (engine_.now() - SimTime::zero()).sec();
  if (elapsed <= 0) return 0.0;
  return std::min(1.0, busy_seconds_ / elapsed);
}

void Cpu::advance() {
  const double dt = (engine_.now() - last_update_).sec();
  last_update_ = engine_.now();
  if (dt <= 0) return;

  // Kernel class drains first (strict priority).
  const double kernel_drain = std::min(kernel_backlog_sec_, dt);
  kernel_backlog_sec_ -= kernel_drain;
  busy_seconds_ += kernel_drain;

  const double user_time = dt - kernel_drain;
  if (user_time <= 0) return;

  const double total_weight = runnable_weight();
  if (total_weight <= 0) return;
  busy_seconds_ += user_time;

  // No completion falls strictly inside (last_update, now): completions are
  // always delivered through scheduled events, so the runnable set and the
  // per-task share are constant across this interval and the integral is
  // exact. Shares are weight-proportional (weighted fair sharing).
  for (auto& [id, task] : tasks_) {
    if (!task.runnable()) continue;
    const double share = user_time * task.weight / total_weight;
    task.cpu_seconds_done += share;
    if (!task.compute_sink) {
      task.items.front().remaining_sec -= share;
    }
  }
}

void Cpu::reschedule_completion() {
  completion_event_.cancel();

  const double total_weight = runnable_weight();
  if (total_weight <= 0) return;

  // Earliest head-item completion assuming the runnable set stays fixed:
  // a task at rate weight/total finishes `remaining` in
  // remaining * total / weight wall seconds.
  double min_eta = std::numeric_limits<double>::infinity();
  for (const auto& [id, task] : tasks_) {
    if (task.compute_sink || task.items.empty()) continue;
    const double remaining = std::max(task.items.front().remaining_sec, 0.0);
    min_eta = std::min(min_eta, remaining * total_weight / task.weight);
  }
  if (min_eta == std::numeric_limits<double>::infinity()) return;

  const double eta_sec = kernel_backlog_sec_ + min_eta;
  // Sub-nanosecond ETAs truncate to zero and would spin the event loop at
  // one timestamp forever; 1 ns over-serves the task by a negligible share.
  const SimDuration eta = std::max(nanoseconds(1), seconds(eta_sec));
  completion_event_ = engine_.schedule_after(eta, [this] {
    advance();
    // Deliver every head item that is now complete (ties finish together).
    std::vector<std::function<void()>> done;
    for (auto& [id, task] : tasks_) {
      while (!task.items.empty() &&
             task.items.front().remaining_sec <= kWorkEpsilonSec) {
        done.push_back(std::move(task.items.front().on_complete));
        task.items.pop_front();
      }
    }
    reschedule_completion();
    for (auto& fn : done) {
      if (fn) fn();
    }
  });
}

}  // namespace dproc::host
