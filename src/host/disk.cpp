#include "dproc/host/disk.hpp"

#include <stdexcept>
#include <utility>

namespace dproc::host {

Disk::Disk(sim::Engine& engine, DiskConfig config)
    : engine_(engine), config_(config) {
  if (config_.bandwidth_bytes_per_sec <= 0) {
    throw std::invalid_argument{"DiskConfig bandwidth must be positive"};
  }
}

void Disk::submit(Op op, std::uint64_t bytes, std::function<void()> on_complete) {
  queue_.push_back(Request{op, bytes, std::move(on_complete)});
  if (!busy_) start_next();
}

void Disk::start_next() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  Request req = std::move(queue_.front());
  queue_.pop_front();

  const SimDuration service =
      config_.seek_time +
      seconds(static_cast<double>(req.bytes) / config_.bandwidth_bytes_per_sec);
  busy_time_ += service;

  engine_.schedule_after(service, [this, req = std::move(req)]() mutable {
    const std::uint64_t sectors = (req.bytes + kSectorSize - 1) / kSectorSize;
    if (req.op == Op::kRead) {
      ++counters_.reads;
      counters_.sectors_read += sectors;
    } else {
      ++counters_.writes;
      counters_.sectors_written += sectors;
    }
    if (req.on_complete) req.on_complete();
    start_next();
  });
}

}  // namespace dproc::host
