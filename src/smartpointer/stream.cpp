#include "dproc/smartpointer/stream.hpp"

#include <algorithm>
#include <cmath>

#include "dproc/net/wire.hpp"

namespace dproc::smartpointer {

const char* to_string(Representation rep) {
  switch (rep) {
    case Representation::kFull: return "full";
    case Representation::kPositionOnly: return "position_only";
    case Representation::kCompressed: return "compressed";
    case Representation::kPreRendered: return "pre_rendered";
  }
  return "?";
}

std::uint64_t StreamCostModel::frame_bytes(Representation rep,
                                           std::uint32_t atoms,
                                           double fraction) const {
  fraction = std::clamp(fraction, 0.0, 1.0);
  const double atoms_kept = static_cast<double>(atoms) * fraction;
  switch (rep) {
    case Representation::kFull:
      return static_cast<std::uint64_t>(
          atoms_kept * workload::MdLayout::kFullBytesPerAtom);
    case Representation::kPositionOnly:
      return static_cast<std::uint64_t>(
          atoms_kept * workload::MdLayout::kPositionOnlyBytesPerAtom);
    case Representation::kCompressed:
      return static_cast<std::uint64_t>(
          atoms_kept * workload::MdLayout::kFullBytesPerAtom *
          compressed_size_factor);
    case Representation::kPreRendered:
      // An image's size does not depend on the atom count.
      return workload::MdLayout::kImageBytes;
  }
  return 0;
}

double StreamCostModel::client_cpu_seconds(Representation rep,
                                           std::uint64_t bytes) const {
  const double mb = static_cast<double>(bytes) / 1e6;
  switch (rep) {
    case Representation::kFull: return mb * cpu_sec_per_mb_full;
    case Representation::kPositionOnly: return mb * cpu_sec_per_mb_position;
    case Representation::kCompressed: return mb * cpu_sec_per_mb_compressed;
    case Representation::kPreRendered: return mb * cpu_sec_per_mb_image;
  }
  return 0.0;
}

net::MessagePtr encode_frame(const FramePayload& frame) {
  net::ByteWriter w;
  w.u8(1);  // frame opcode
  w.u64(frame.frame_number);
  w.i64(frame.generated_at.ns());
  w.u8(static_cast<std::uint8_t>(frame.rep));
  w.f64(frame.fraction);
  w.u64(frame.data_bytes);
  return net::make_message(w.take(), frame.data_bytes);
}

Result<FramePayload> decode_frame(const net::MessagePtr& message) {
  net::ByteReader r{message->header};
  if (r.u8() != 1) return Status::invalid_argument("not a frame message");
  FramePayload frame;
  frame.frame_number = r.u64();
  frame.generated_at = SimTime{r.i64()};
  frame.rep = static_cast<Representation>(r.u8());
  frame.fraction = r.f64();
  frame.data_bytes = r.u64();
  if (!r.ok()) return Status::invalid_argument("truncated frame header");
  return frame;
}

net::MessagePtr encode_subscribe(const Subscribe& sub) {
  net::ByteWriter w;
  w.u8(2);  // subscribe opcode
  w.u32(sub.client_node);
  w.u8(static_cast<std::uint8_t>(sub.mode));
  w.u8(static_cast<std::uint8_t>(sub.static_rep));
  w.u8(sub.storage_client ? 1 : 0);
  return net::make_message(w.take());
}

Result<Subscribe> decode_subscribe(const net::MessagePtr& message) {
  net::ByteReader r{message->header};
  if (r.u8() != 2) return Status::invalid_argument("not a subscribe message");
  Subscribe sub;
  sub.client_node = r.u32();
  sub.mode = static_cast<FilterMode>(r.u8());
  sub.static_rep = static_cast<Representation>(r.u8());
  sub.storage_client = r.u8() != 0;
  if (!r.ok()) return Status::invalid_argument("truncated subscribe");
  return sub;
}

}  // namespace dproc::smartpointer
