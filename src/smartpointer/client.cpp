#include "dproc/smartpointer/client.hpp"

#include "dproc/core/monitors.hpp"
#include "dproc/util/logging.hpp"

namespace dproc::smartpointer {

Client::Client(host::Host& host, net::Nic& nic, net::NodeId server,
               net::Port server_port, ClientConfig config)
    : host_(host),
      nic_(nic),
      server_(server),
      server_port_(server_port),
      config_(config),
      checkpoint_time_(host.engine().now()) {
  processing_task_ = host_.cpu().add_server_task("smartpointer-client");
  if (config_.dmon != nullptr) {
    config_.dmon->register_module(std::make_unique<core::SyntheticMonitor>(
        "app", 1, [this](std::size_t, SimTime) { return lag_ewma_.value(); }));
  }
}

Client::~Client() {
  if (conn_) conn_->close();
  host_.cpu().remove_task(processing_task_);
}

void Client::connect() {
  conn_ = net::TcpConnection::connect(
      nic_, server_, server_port_, net::TcpConfig{}, [this] {
        Subscribe sub;
        sub.client_node = nic_.node();
        sub.mode = config_.mode;
        sub.static_rep = config_.static_rep;
        sub.storage_client = config_.storage_client;
        conn_->send(encode_subscribe(sub));
      });
  conn_->set_message_handler(
      [this](const net::MessagePtr& message) { on_frame(message); });
}

void Client::on_frame(const net::MessagePtr& message) {
  auto frame = decode_frame(message);
  if (!frame) {
    DPROC_WARN() << "smartpointer client " << nic_.node()
                 << ": bad frame: " << frame.status().to_string();
    return;
  }
  ++received_;
  const FramePayload payload = frame.value();
  const double cpu_seconds =
      config_.costs.client_cpu_seconds(payload.rep, payload.data_bytes) *
      config_.processing_scale;

  host_.cpu().submit_work(processing_task_, cpu_seconds, [this, payload] {
    if (config_.storage_client) {
      host_.disk().submit(host::Disk::Op::kWrite, payload.data_bytes);
    }
    ++processed_;
    const SimDuration lag = host_.engine().now() - payload.generated_at;
    lags_.add(lag.sec());
    lag_ewma_.add(lag.sec());
    lag_series_.push_back(LagPoint{host_.engine().now(), lag, payload.rep});
    if (on_frame_processed_) on_frame_processed_(payload, host_.engine().now());
  });
}

double Client::event_rate_since_checkpoint() const {
  const double elapsed = (host_.engine().now() - checkpoint_time_).sec();
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(processed_ - checkpoint_processed_) / elapsed;
}

void Client::checkpoint() {
  checkpoint_processed_ = processed_;
  checkpoint_time_ = host_.engine().now();
}

std::size_t Client::backlog() const {
  return host_.cpu().queued_items(processing_task_);
}

}  // namespace dproc::smartpointer
