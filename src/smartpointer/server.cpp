#include "dproc/smartpointer/server.hpp"

#include <algorithm>
#include <array>

#include "dproc/util/logging.hpp"

namespace dproc::smartpointer {

Server::Server(host::Host& host, net::Nic& nic, core::DMon* dmon,
               ServerConfig config)
    : host_(host),
      nic_(nic),
      dmon_(dmon),
      config_(config),
      source_(config.atom_count) {}

Server::~Server() { stop(); }

void Server::start() {
  listener_ = std::make_unique<net::TcpListener>(
      nic_, config_.port, net::TcpConfig{},
      [this](net::TcpConnection::Ptr conn) { on_accept(std::move(conn)); });
  frame_timer_ = host_.engine().schedule_periodic(
      seconds(1.0 / config_.frame_rate_hz), [this] { tick(); });
}

void Server::stop() {
  frame_timer_.cancel();
  listener_.reset();
}

void Server::on_accept(net::TcpConnection::Ptr conn) {
  net::TcpConnection* raw = conn.get();
  pending_.push_back(conn);
  raw->set_message_handler([this, raw](const net::MessagePtr& message) {
    auto sub = decode_subscribe(message);
    if (!sub) {
      DPROC_WARN() << "smartpointer server: bad subscribe: "
                   << sub.status().to_string();
      return;
    }
    // Promote from pending to an active client.
    auto it = std::find_if(pending_.begin(), pending_.end(),
                           [raw](const net::TcpConnection::Ptr& p) {
                             return p.get() == raw;
                           });
    if (it == pending_.end()) return;
    ClientState state;
    state.node = (*it)->remote_node();
    state.subscription = sub.value();
    state.conn = std::move(*it);
    pending_.erase(it);
    state.bandwidth_estimate_bps = config_.link_capacity_bps;
    DPROC_INFO() << "smartpointer server: client node " << state.node
                 << " subscribed, mode "
                 << static_cast<int>(state.subscription.mode);
    clients_[state.node] = std::move(state);
  });
}

const Server::ClientState* Server::client(net::NodeId node) const {
  auto it = clients_.find(node);
  return it == clients_.end() ? nullptr : &it->second;
}

double Server::metric(net::NodeId node, const std::string& key,
                      double fallback) const {
  if (dmon_ == nullptr) return fallback;
  const core::RemoteMetric* m = dmon_->remote_metric(node, key);
  return m == nullptr ? fallback : m->value;
}

bool Server::feed_degraded(net::NodeId node) const {
  if (dmon_ == nullptr) return false;
  auto health = dmon_->peer_health(node);
  if (!health) return false;  // undeclared peer: metric() fallbacks apply
  if (health->state == core::PeerState::kDead) return true;
  // Stale with cached data: the cache is actively misleading. Stale with
  // no data yet is just warmup; the per-metric fallbacks handle it.
  return health->state == core::PeerState::kStale && health->has_data;
}

void Server::update_bandwidth_estimate(ClientState& client) {
  // Congestion signals, all derived from the client's dproc feeds: the
  // client receives measurably less than this server has been sending, or
  // its connections report inflated RTTs.
  const double rtt = metric(client.node, "rtt", 0.0);
  const double in_bps = metric(client.node, "net_in", 0.0);
  const double sending_bps = client.last_send_rate_bps;

  if (rtt > 0 &&
      (client.baseline_rtt_us == 0.0 || rtt < client.baseline_rtt_us)) {
    client.baseline_rtt_us = rtt;
  }
  // RTT inflation alone is not a decrease trigger: the stream's own bursts
  // queue other packets behind them on an otherwise healthy path (observed
  // with monitoring-channel ACKs riding the frame downlink). The reliable
  // signal is the client receiving measurably less than what is sent.
  const bool rtt_inflated =
      client.baseline_rtt_us > 0 && rtt > 2.0 * client.baseline_rtt_us;
  (void)rtt_inflated;

  // The client's receive-rate metric is EWMA-smoothed and refreshes once
  // per monitoring period, so right after the send rate steps up the
  // metric legitimately lags behind. Suppress gap detection inside a short
  // grace window after any material rate increase; real congestion
  // persists past it.
  // The EWMA reaches ~82% of a step after four 1-second samples, so a 4 s
  // grace with a 0.75 threshold cannot false-trigger on a rate increase.
  const SimTime now = host_.engine().now();
  const bool in_grace =
      (now - client.last_rate_increase_at) < seconds(4.0);
  const bool throughput_gap =
      !in_grace && sending_bps > 1e6 && in_bps < 0.75 * sending_bps;

  // The decisive signal: the client's own application-level lag metric
  // (published through dproc when the client has a d-mon). A rate-matching
  // gap cannot see a small persistent overload — the lag can, immediately
  // and without any grace window.
  const double interval = 1.0 / config_.frame_rate_hz;
  const double lag = metric(client.node, "stream_lag", 0.0);
  const bool lag_high = lag > 1.5 * interval;

  if (throughput_gap || lag_high) {
    // Two consecutive signals, then multiplicative decrease toward what
    // the client demonstrably receives.
    if (++client.gap_strikes < 2) return;
    client.gap_strikes = 0;
    client.collapse_rate_bps = std::max(sending_bps, 2e6);
    const double floor_bps = 1e6;
    client.bandwidth_estimate_bps =
        std::max(floor_bps, 0.75 * std::max(in_bps, floor_bps));
  } else if (lag < 0.75 * interval) {
    client.gap_strikes = 0;
    // Recover only while the client is demonstrably keeping up, and slow
    // down near the rate that last failed (ssthresh-style probing) so
    // repeated overshoots stay small.
    const bool cautious = client.collapse_rate_bps > 0 &&
                          client.bandwidth_estimate_bps >
                              0.5 * client.collapse_rate_bps;
    const double factor = cautious ? 1.02 : 1.10;
    client.bandwidth_estimate_bps =
        std::min(config_.link_capacity_bps,
                 client.bandwidth_estimate_bps * factor + (cautious ? 50e3 : 250e3));
  } else {
    client.gap_strikes = 0;
  }
}

namespace {
/// Relative information content of each derivation, used to prefer the
/// richest stream the client's resources can sustain.
double fidelity(Representation rep) {
  switch (rep) {
    case Representation::kFull: return 1.0;
    case Representation::kPositionOnly: return 0.85;
    case Representation::kCompressed: return 0.80;
    case Representation::kPreRendered: return 0.60;
  }
  return 0.0;
}
}  // namespace

std::pair<Representation, double> Server::choose(ClientState& client) {
  update_bandwidth_estimate(client);

  const double loadavg = metric(client.node, "loadavg", 0.0);
  const double disk_sectors = metric(client.node, "diskusage", 0.0);
  const double interval = 1.0 / config_.frame_rate_hz;
  // The client's run-queue length includes its own stream-processing task,
  // whose cost the per-representation CPU term already accounts. Estimate
  // that self-contribution from the last decision and subtract it, so only
  // true competitors (linpack threads, other apps) inflate the CPU term.
  const double own_load = std::min(
      1.0, config_.costs.client_cpu_seconds(
               client.last_rep,
               config_.costs.frame_bytes(client.last_rep, source_.atom_count(),
                                         client.last_fraction)) *
               config_.frame_rate_hz);
  const double competing_load = std::max(0.0, loadavg - own_load);
  const double bw = std::max(client.bandwidth_estimate_bps, 1e5);
  // Sustainability budget: the per-frame work must drain within the frame
  // interval with some headroom or queues grow without bound.
  const double budget = 0.85 * interval;
  const bool use_cpu = config_.policy != PolicyInputs::kNetOnly;
  const bool use_net = config_.policy != PolicyInputs::kCpuOnly;
  const bool use_disk = config_.policy == PolicyInputs::kHybrid &&
                        (client.subscription.storage_client || disk_sectors > 0);

  static constexpr std::array<Representation, 4> kReps{
      Representation::kFull, Representation::kPositionOnly,
      Representation::kCompressed, Representation::kPreRendered};

  auto estimate = [&](Representation rep, double frac) {
    const auto bytes = static_cast<double>(
        config_.costs.frame_bytes(rep, source_.atom_count(), frac));
    double t = 0.0;
    if (use_net) t += bytes * 8.0 / bw;
    if (use_cpu) {
      t += config_.costs.client_cpu_seconds(rep, static_cast<std::uint64_t>(bytes)) *
           (1.0 + competing_load);
    }
    if (use_disk) t += bytes * 8.0 / config_.disk_bandwidth_bps;
    return t;
  };

  Representation best_feasible{};
  double best_feasible_fraction = 0.0;
  double best_feasible_score = -1.0;
  Representation best_any{};
  double best_any_fraction = 1.0;
  double best_any_time = std::numeric_limits<double>::infinity();

  for (Representation rep : kReps) {
    // Largest decimation fraction whose estimated per-frame time fits the
    // budget. Time is linear in bytes (and bytes in fraction) for the data
    // derivations; pre-rendered images have a fixed size.
    double fraction = 1.0;
    const double t_full = estimate(rep, 1.0);
    if (rep != Representation::kPreRendered && t_full > budget && t_full > 0) {
      fraction = std::clamp(budget / t_full, config_.min_fraction, 1.0);
    }
    const double t = estimate(rep, fraction);
    if (t <= budget) {
      const double score = fidelity(rep) * fraction;
      if (score > best_feasible_score) {
        best_feasible_score = score;
        best_feasible = rep;
        best_feasible_fraction = fraction;
      }
    }
    if (t < best_any_time) {
      best_any_time = t;
      best_any = rep;
      best_any_fraction = fraction;
    }
  }

  if (best_feasible_score >= 0.0) return {best_feasible, best_feasible_fraction};
  // Nothing sustainable: least-bad choice, maximally decimated.
  return {best_any, best_any_fraction};
}

void Server::note_decision(const ClientState& client) {
  telemetry::Registry& tm = host_.telemetry();
  if (!tm.trace_enabled() || dmon_ == nullptr) return;
  // The dynamic policy reads several of the client's metrics; attribute the
  // decision to the freshest one that carried a trace id — the sample whose
  // arrival most plausibly steered this frame.
  static constexpr const char* kConsulted[] = {"rtt", "net_in", "loadavg",
                                               "diskusage", "stream_lag"};
  const core::RemoteMetric* freshest = nullptr;
  for (const char* key : kConsulted) {
    const core::RemoteMetric* m = dmon_->remote_metric(client.node, key);
    if (m == nullptr || m->trace_id == 0) continue;
    if (freshest == nullptr || m->received_at > freshest->received_at) {
      freshest = m;
    }
  }
  if (freshest == nullptr) return;
  const std::int64_t now_ns = host_.engine().now().ns();
  // dur: how long the rendered value waited before steering a stream.
  tm.record_hop(telemetry::Hop{
      freshest->trace_id, client.node, dmon_->monitor_channel_id(),
      telemetry::HopStage::kDecision, now_ns,
      now_ns - freshest->received_at.ns()});
}

void Server::note_trust_drop(net::NodeId node, std::uint64_t reason) {
  host_.flight().record(telemetry::Severity::kWarn,
                        telemetry::FlightSubsystem::kSmartPointer,
                        telemetry::FlightCode::kTrustDrop, node, reason);
}

void Server::tick() {
  const workload::MdFrame frame = source_.next_frame(host_.engine().now());
  ++frames_;
  for (auto& [node, client] : clients_) {
    send_frame(client, frame);
  }
}

void Server::send_frame(ClientState& client, const workload::MdFrame& frame) {
  Representation rep = Representation::kFull;
  double fraction = 1.0;
  switch (client.subscription.mode) {
    case FilterMode::kNone:
      break;
    case FilterMode::kStatic:
      rep = client.subscription.static_rep;
      break;
    case FilterMode::kDynamic: {
      if (feed_degraded(client.node)) {
        // Stale metrics would steer against a cluster state that no longer
        // exists; degrade conservatively until the feed recovers.
        rep = config_.stale_fallback_rep;
        fraction = config_.stale_fallback_fraction;
        ++client.stale_fallbacks;
        note_trust_drop(client.node, 0);
        break;
      }
      if (dmon_ != nullptr && !dmon_->peer_health_ok(client.node)) {
        // The client's own health engine scores its monitoring path below
        // the trust threshold. The score aggregates drops, collect errors
        // and churn, so it typically degrades before any individual sample
        // misses its staleness SLO — distrust the feed early.
        rep = config_.stale_fallback_rep;
        fraction = config_.stale_fallback_fraction;
        ++client.health_distrusts;
        note_trust_drop(client.node, 2);
        break;
      }
      if (dmon_ != nullptr && !dmon_->feed_within_slo(client.node)) {
        // The feed updates but its samples arrive past their staleness
        // budget: the values describe a cluster state that is budget-old
        // by the time they steer, so distrust them the same way.
        rep = config_.stale_fallback_rep;
        fraction = config_.stale_fallback_fraction;
        ++client.slo_distrusts;
        note_trust_drop(client.node, 1);
        break;
      }
      auto [chosen_rep, chosen_fraction] = choose(client);
      rep = chosen_rep;
      fraction = chosen_fraction;
      note_decision(client);
      break;
    }
  }

  FramePayload payload;
  payload.frame_number = frame.frame_number;
  payload.generated_at = frame.generated_at;
  payload.rep = rep;
  payload.fraction = fraction;
  payload.data_bytes =
      config_.costs.frame_bytes(rep, frame.atom_count, fraction);

  client.last_rep = rep;
  client.last_fraction = fraction;
  const double new_rate =
      static_cast<double>(payload.data_bytes) * 8.0 * config_.frame_rate_hz;
  if (new_rate > 1.25 * client.last_send_rate_bps ||
      client.last_send_rate_bps < 1e6) {
    client.last_rate_increase_at = host_.engine().now();
  }
  client.last_send_rate_bps = new_rate;
  ++client.frames_sent;
  client.conn->send(encode_frame(payload));
}

}  // namespace dproc::smartpointer
