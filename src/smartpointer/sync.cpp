#include "dproc/smartpointer/sync.hpp"

#include <algorithm>
#include <stdexcept>

namespace dproc::smartpointer {

SyncGroup::SyncGroup(std::vector<Client*> streams)
    : streams_(std::move(streams)) {
  if (streams_.size() < 2) {
    throw std::invalid_argument{"SyncGroup needs at least two streams"};
  }
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    streams_[i]->set_frame_callback(
        [this, i](const FramePayload& frame, SimTime at) {
          on_frame(i, frame, at);
        });
  }
}

std::size_t SyncGroup::buffered() const {
  std::size_t count = 0;
  for (const auto& [frame, arrivals] : pending_) {
    for (const auto& [done, at] : arrivals) count += done ? 1 : 0;
  }
  return count;
}

void SyncGroup::on_frame(std::size_t stream, const FramePayload& frame,
                         SimTime at) {
  auto [it, created] = pending_.try_emplace(
      frame.frame_number,
      std::vector<std::pair<bool, SimTime>>(streams_.size(), {false, {}}));
  it->second[stream] = {true, at};

  const bool complete = std::all_of(it->second.begin(), it->second.end(),
                                    [](const auto& e) { return e.first; });
  stats_.max_buffered = std::max<std::uint64_t>(stats_.max_buffered, buffered());
  if (!complete) return;

  // Present: skew is the spread of completion times; the earlier streams
  // waited (now - their completion) in the sync buffer.
  SimTime earliest = it->second.front().second;
  SimTime latest = it->second.front().second;
  for (const auto& [done, when] : it->second) {
    earliest = std::min(earliest, when);
    latest = std::max(latest, when);
  }
  ++stats_.presented;
  stats_.skew_sec.add((latest - earliest).sec());
  for (const auto& [done, when] : it->second) {
    stats_.buffer_delay_sec.add((latest - when).sec());
  }
  pending_.erase(it);
}

}  // namespace dproc::smartpointer
