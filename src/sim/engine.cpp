#include "dproc/sim/engine.hpp"

#include <stdexcept>
#include <utility>

namespace dproc::sim {

std::size_t Engine::heap_push(Scheduled&& ev) {
  heap_.push_back(std::move(ev));
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!before(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
  return i;
}

Engine::Scheduled Engine::heap_pop() {
  Scheduled top = std::move(heap_.front());
  heap_.front() = std::move(heap_.back());
  heap_.pop_back();
  std::size_t i = 0;
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t left = 2 * i + 1;
    const std::size_t right = left + 1;
    std::size_t smallest = i;
    if (left < n && before(heap_[left], heap_[smallest])) smallest = left;
    if (right < n && before(heap_[right], heap_[smallest])) smallest = right;
    if (smallest == i) break;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
  return top;
}

EventHandle Engine::materialize(std::uint64_t seq, std::size_t hint) {
  Scheduled* ev = nullptr;
  if (hint < heap_.size() && heap_[hint].seq == seq) {
    ev = &heap_[hint];
  } else {
    // The hint goes stale as soon as later queue operations move nodes
    // around; handles are almost always taken immediately after
    // scheduling, so this scan is the rare path.
    for (Scheduled& candidate : heap_) {
      if (candidate.seq == seq) {
        ev = &candidate;
        break;
      }
    }
  }
  if (ev == nullptr) {
    // Already fired (or was popped): hand out a flag nobody checks, so
    // cancel() stays a safe no-op and valid() stays true.
    ++flag_allocs_;
    return EventHandle{std::make_shared<bool>(false)};
  }
  if (!ev->cancelled) {
    ev->cancelled = std::make_shared<bool>(false);
    ++flag_allocs_;
  }
  return EventHandle{ev->cancelled};
}

PendingEvent Engine::schedule_at(SimTime when, Callback fn) {
  if (when < now_) {
    throw std::invalid_argument{"Engine::schedule_at: time in the past"};
  }
  const std::uint64_t seq = next_seq_++;
  const std::size_t at = heap_push(Scheduled{when, seq, nullptr, std::move(fn)});
  return PendingEvent{this, seq, at};
}

PendingEvent Engine::schedule_after(SimDuration delay, Callback fn) {
  if (delay < SimDuration::zero()) delay = SimDuration::zero();
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Engine::schedule_periodic(SimDuration period, Callback fn) {
  if (period <= SimDuration::zero()) {
    throw std::invalid_argument{"Engine::schedule_periodic: period must be > 0"};
  }
  auto flag = std::make_shared<bool>(false);
  ++flag_allocs_;
  // The wrapper owns the user callback and re-arms itself each period. It
  // captures itself weakly — the pending queue entry holds the only strong
  // reference — so cancelling (or destroying the engine) drops the last
  // queue entry and with it the whole chain; a self-referential strong
  // capture would cycle and never free.
  auto tick = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak = tick;
  *tick = [this, period, flag, weak, fn = std::move(fn)]() {
    if (*flag) return;
    fn();
    if (*flag) return;  // fn may have cancelled its own timer
    if (auto self = weak.lock()) {
      heap_push(Scheduled{now_ + period, next_seq_++, flag,
                          [self] { (*self)(); }});
    }
  };
  heap_push(Scheduled{now_ + period, next_seq_++, flag, [tick] { (*tick)(); }});
  return EventHandle{std::move(flag)};
}

void Engine::fire(Scheduled&& ev) {
  now_ = ev.when;
  if (ev.cancelled && *ev.cancelled) return;
  ++processed_;
  ev.fn();
}

bool Engine::step() {
  // Skip cancelled entries without counting them as processed events.
  while (!heap_.empty()) {
    Scheduled ev = heap_pop();
    if (ev.cancelled && *ev.cancelled) continue;
    fire(std::move(ev));
    return true;
  }
  return false;
}

void Engine::run_until(SimTime deadline) {
  while (!heap_.empty() && heap_.front().when <= deadline) {
    fire(heap_pop());
  }
  if (now_ < deadline) now_ = deadline;
}

void Engine::run() {
  while (step()) {
  }
}

}  // namespace dproc::sim
