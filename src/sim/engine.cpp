#include "dproc/sim/engine.hpp"

#include <stdexcept>
#include <utility>

namespace dproc::sim {

EventHandle Engine::schedule_at(SimTime when, Callback fn) {
  if (when < now_) {
    throw std::invalid_argument{"Engine::schedule_at: time in the past"};
  }
  auto flag = std::make_shared<bool>(false);
  queue_.push(Scheduled{when, next_seq_++, flag, std::move(fn)});
  return EventHandle{std::move(flag)};
}

EventHandle Engine::schedule_after(SimDuration delay, Callback fn) {
  if (delay < SimDuration::zero()) delay = SimDuration::zero();
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Engine::schedule_periodic(SimDuration period, Callback fn) {
  if (period <= SimDuration::zero()) {
    throw std::invalid_argument{"Engine::schedule_periodic: period must be > 0"};
  }
  auto flag = std::make_shared<bool>(false);
  // The recursive lambda owns the user callback; the queue entry holds a
  // copy of the wrapper so cancellation via `flag` stops the chain.
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [this, period, flag, tick, fn = std::move(fn)]() {
    if (*flag) return;
    fn();
    if (*flag) return;  // fn may have cancelled its own timer
    queue_.push(Scheduled{now_ + period, next_seq_++, flag, *tick});
  };
  queue_.push(Scheduled{now_ + period, next_seq_++, flag, *tick});
  return EventHandle{std::move(flag)};
}

void Engine::fire(Scheduled&& ev) {
  now_ = ev.when;
  if (ev.cancelled && *ev.cancelled) return;
  ++processed_;
  ev.fn();
}

bool Engine::step() {
  // Skip cancelled entries without counting them as processed events.
  while (!queue_.empty()) {
    Scheduled ev = queue_.top();
    queue_.pop();
    if (ev.cancelled && *ev.cancelled) continue;
    fire(std::move(ev));
    return true;
  }
  return false;
}

void Engine::run_until(SimTime deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) {
    Scheduled ev = queue_.top();
    queue_.pop();
    fire(std::move(ev));
  }
  if (now_ < deadline) now_ = deadline;
}

void Engine::run() {
  while (step()) {
  }
}

}  // namespace dproc::sim
