#include "dproc/sim/fault.hpp"

namespace dproc::sim {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNodeCrash: return "node_crash";
    case FaultKind::kNodeRestart: return "node_restart";
    case FaultKind::kLinkDown: return "link_down";
    case FaultKind::kLinkUp: return "link_up";
    case FaultKind::kLinkLossStart: return "link_loss_start";
    case FaultKind::kLinkLossStop: return "link_loss_stop";
    case FaultKind::kRegistryDown: return "registry_down";
    case FaultKind::kRegistryUp: return "registry_up";
    case FaultKind::kRegistryLeaderKill: return "registry_leader_kill";
  }
  return "unknown";
}

FaultPlan& FaultPlan::crash_node(SimTime at, std::uint32_t node) {
  events_.push_back({at, FaultKind::kNodeCrash, node, 0.0, 0});
  return *this;
}

FaultPlan& FaultPlan::restart_node(SimTime at, std::uint32_t node) {
  events_.push_back({at, FaultKind::kNodeRestart, node, 0.0, 0});
  return *this;
}

FaultPlan& FaultPlan::node_outage(SimTime at, SimTime until,
                                  std::uint32_t node) {
  return crash_node(at, node).restart_node(until, node);
}

FaultPlan& FaultPlan::partition_link(SimTime at, std::uint32_t link) {
  events_.push_back({at, FaultKind::kLinkDown, link, 0.0, 0});
  return *this;
}

FaultPlan& FaultPlan::heal_link(SimTime at, std::uint32_t link) {
  events_.push_back({at, FaultKind::kLinkUp, link, 0.0, 0});
  return *this;
}

FaultPlan& FaultPlan::flap_link(SimTime from, SimTime until,
                                SimDuration half_period, std::uint32_t link) {
  bool down = true;
  for (SimTime t = from; t < until; t = t + half_period) {
    if (down) {
      partition_link(t, link);
    } else {
      heal_link(t, link);
    }
    down = !down;
  }
  return heal_link(until, link);
}

FaultPlan& FaultPlan::loss_burst(SimTime from, SimTime until,
                                 std::uint32_t link, double p,
                                 std::uint64_t seed) {
  events_.push_back({from, FaultKind::kLinkLossStart, link, p, seed});
  events_.push_back({until, FaultKind::kLinkLossStop, link, 0.0, 0});
  return *this;
}

FaultPlan& FaultPlan::registry_outage(SimTime from, SimTime until) {
  events_.push_back({from, FaultKind::kRegistryDown, 0, 0.0, 0});
  events_.push_back({until, FaultKind::kRegistryUp, 0, 0.0, 0});
  return *this;
}

FaultPlan& FaultPlan::kill_registry_leader(SimTime at) {
  events_.push_back({at, FaultKind::kRegistryLeaderKill, 0, 0.0, 0});
  return *this;
}

void FaultInjector::schedule(const FaultPlan& plan) {
  for (const FaultEvent& event : plan.events()) {
    ++scheduled_;
    engine_.schedule_at(event.at, [this, event] { apply(event); });
  }
}

void FaultInjector::apply(const FaultEvent& event) {
  switch (event.kind) {
    case FaultKind::kNodeCrash:
      if (hooks_.node_down) hooks_.node_down(event.target, true);
      break;
    case FaultKind::kNodeRestart:
      if (hooks_.node_down) hooks_.node_down(event.target, false);
      break;
    case FaultKind::kLinkDown:
      if (hooks_.link_down) hooks_.link_down(event.target, true);
      break;
    case FaultKind::kLinkUp:
      if (hooks_.link_down) hooks_.link_down(event.target, false);
      break;
    case FaultKind::kLinkLossStart:
      if (hooks_.link_loss) hooks_.link_loss(event.target, event.param, event.seed);
      break;
    case FaultKind::kLinkLossStop:
      if (hooks_.link_loss) hooks_.link_loss(event.target, 0.0, 0);
      break;
    case FaultKind::kRegistryDown:
      if (hooks_.registry_down) hooks_.registry_down(true);
      break;
    case FaultKind::kRegistryUp:
      if (hooks_.registry_down) hooks_.registry_down(false);
      break;
    case FaultKind::kRegistryLeaderKill:
      if (hooks_.registry_leader_kill) hooks_.registry_leader_kill();
      break;
  }
  if (hooks_.record) hooks_.record(event);
  applied_.push_back(event);
  if (observer_) observer_(event);
}

}  // namespace dproc::sim
