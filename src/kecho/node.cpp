#include "dproc/kecho/node.hpp"

#include <algorithm>

#include "dproc/net/wire.hpp"
#include "dproc/util/logging.hpp"

namespace dproc::kecho {

namespace {

/// Bytes of the fixed event-frame header preceding the payload header:
/// channel (4) + source (4) + submit time (8) + payload header length (4).
constexpr std::size_t kFrameHeaderBytes = 20;

/// Event frame carried over the peer transport: fixed header + the
/// application payload's encoded header + (only when tracing) one
/// TraceContext trailer; bulk rides as declared body bytes. The frame
/// buffer is built exactly-sized in one allocation and then shared (never
/// copied) by every transport send and receiving channel. `trace` null
/// keeps the encoding byte-identical to the untraced stack.
net::MessagePtr encode_event(ChannelId channel, net::NodeId source,
                             SimTime submitted_at,
                             const net::MessagePtr& payload,
                             const net::TraceContext* trace = nullptr) {
  net::ByteWriter w;
  w.reserve(kFrameHeaderBytes + payload->header.size() +
            (trace != nullptr ? net::TraceContext::kWireBytes : 0));
  w.u32(channel);
  w.u32(source);
  w.i64(submitted_at.ns());
  w.u32(static_cast<std::uint32_t>(payload->header.size()));
  w.bytes(payload->header);
  if (trace != nullptr) trace->encode(w);
  return net::make_message(w.take(), payload->body_bytes);
}

}  // namespace

// Zero-copy decode: validates the frame and records where the payload
// starts; the event aliases the frame instead of materializing a payload.
// Bytes past the payload header must be exactly one trace-context trailer
// (identified by length *and* marker byte) or absent.
bool decode_event_frame(const net::MessagePtr& frame, Event& event) {
  net::ByteReader r{frame->header};
  event.channel = r.u32();
  event.source = r.u32();
  event.submitted_at = SimTime{r.i64()};
  const std::uint32_t payload_header_bytes = r.u32();
  if (!r.ok() || r.remaining() < payload_header_bytes) return false;
  r.skip(payload_header_bytes);
  const std::size_t extra = r.remaining();
  if (extra == net::TraceContext::kWireBytes) {
    if (!net::TraceContext::decode(r, event.trace)) return false;
  } else if (extra != 0) {
    return false;
  }
  event.frame = frame;
  event.payload_offset = kFrameHeaderBytes;
  event.payload_bytes = payload_header_bytes;
  return true;
}

SimDuration Channel::submit(const net::MessagePtr& payload) {
  return submit_impl(payload, nullptr);
}

SimDuration Channel::submit(const net::MessagePtr& payload,
                            net::TraceContext trace) {
  telemetry::Registry& tm = node_.host().telemetry();
  if (!tm.trace_enabled() || !trace.valid()) {
    return submit_impl(payload, nullptr);
  }
  const std::int64_t now_ns = node_.host().engine().now().ns();
  tm.record_hop(telemetry::Hop{
      trace.trace_id, trace.origin, id_, telemetry::HopStage::kSubmit, now_ns,
      now_ns - trace.prev_hop_ns});
  trace.hop = static_cast<std::uint8_t>(telemetry::HopStage::kSubmit);
  trace.prev_hop_ns = now_ns;
  return submit_impl(payload, &trace);
}

SimDuration Channel::submit_impl(const net::MessagePtr& payload,
                                 const net::TraceContext* trace) {
  ++submitted_;
  const KechoCosts& costs = node_.costs();
  const SimTime now = node_.host().engine().now();
  const net::MessagePtr frame =
      encode_event(id_, node_.nic().node(), now, payload, trace);
  // Every member is charged the same marshalling cost for the same frame;
  // compute it once outside the fan-out loop.
  const double per_member_cycles =
      costs.submit_base_cycles +
      costs.submit_per_byte_cycles * static_cast<double>(frame->size());
  for (const Member& member : members_) {
    if (transport_ == ChannelTransport::kDatagram) {
      node_.nic().send_datagram(member.node, Node::kDatagramEventPort, frame,
                                Node::kDatagramEventPort);
    } else {
      node_.transport_to(member.node)->send(frame);
    }
  }
  if (node_.liveness_.enabled && !members_.empty()) {
    node_.note_submission(members_);
  }
  const double cycles = per_member_cycles * static_cast<double>(members_.size());
  const SimDuration cost =
      seconds(cycles / node_.host().cpu().config().clock_hz);
  if (cost > SimDuration::zero()) node_.host().cpu().consume_kernel(cost);
  node_.tm_submits_.add();
  node_.tm_submit_us_.record(cost);
  // The virtual clock does not advance inside this call, so the span covers
  // [now, now + charged kernel cost] — the interval the CPU model bills.
  node_.host().telemetry().record_span("kecho", "submit", now, now + cost);
  return cost;
}

SimDuration Channel::submit_to(net::NodeId member,
                               const net::MessagePtr& payload) {
  return submit_to_impl(member, payload, nullptr);
}

SimDuration Channel::submit_to(net::NodeId member,
                               const net::MessagePtr& payload,
                               net::TraceContext trace) {
  telemetry::Registry& tm = node_.host().telemetry();
  if (!tm.trace_enabled() || !trace.valid()) {
    return submit_to_impl(member, payload, nullptr);
  }
  const std::int64_t now_ns = node_.host().engine().now().ns();
  tm.record_hop(telemetry::Hop{
      trace.trace_id, trace.origin, id_, telemetry::HopStage::kSubmit, now_ns,
      now_ns - trace.prev_hop_ns});
  trace.hop = static_cast<std::uint8_t>(telemetry::HopStage::kSubmit);
  trace.prev_hop_ns = now_ns;
  return submit_to_impl(member, payload, &trace);
}

SimDuration Channel::submit_to_impl(net::NodeId member,
                                    const net::MessagePtr& payload,
                                    const net::TraceContext* trace) {
  ++submitted_;
  const Member* target = nullptr;
  for (const Member& m : members_) {
    if (m.node == member) {
      target = &m;
      break;
    }
  }
  if (target == nullptr) return SimDuration::zero();  // not (yet) a member
  const KechoCosts& costs = node_.costs();
  const SimTime now = node_.host().engine().now();
  const net::MessagePtr frame =
      encode_event(id_, node_.nic().node(), now, payload, trace);
  if (transport_ == ChannelTransport::kDatagram) {
    node_.nic().send_datagram(target->node, Node::kDatagramEventPort, frame,
                              Node::kDatagramEventPort);
  } else {
    node_.transport_to(target->node)->send(frame);
  }
  if (node_.liveness_.enabled) {
    // Only the targeted member got a frame; only its heartbeat suppresses.
    single_member_scratch_.assign(1, *target);
    node_.note_submission(single_member_scratch_);
  }
  const double cycles =
      costs.submit_base_cycles +
      costs.submit_per_byte_cycles * static_cast<double>(frame->size());
  const SimDuration cost =
      seconds(cycles / node_.host().cpu().config().clock_hz);
  if (cost > SimDuration::zero()) node_.host().cpu().consume_kernel(cost);
  node_.tm_submits_.add();
  node_.tm_submit_us_.record(cost);
  node_.host().telemetry().record_span("kecho", "submit", now, now + cost);
  return cost;
}

SimDuration Channel::submit_to_each(const PayloadSelector& select) {
  return submit_each_impl(select, nullptr);
}

SimDuration Channel::submit_to_each(const PayloadSelector& select,
                                    net::TraceContext trace) {
  telemetry::Registry& tm = node_.host().telemetry();
  if (!tm.trace_enabled() || !trace.valid()) {
    return submit_each_impl(select, nullptr);
  }
  const std::int64_t now_ns = node_.host().engine().now().ns();
  tm.record_hop(telemetry::Hop{
      trace.trace_id, trace.origin, id_, telemetry::HopStage::kSubmit, now_ns,
      now_ns - trace.prev_hop_ns});
  trace.hop = static_cast<std::uint8_t>(telemetry::HopStage::kSubmit);
  trace.prev_hop_ns = now_ns;
  return submit_each_impl(select, &trace);
}

SimDuration Channel::submit_each_impl(const PayloadSelector& select,
                                      const net::TraceContext* trace) {
  ++submitted_;
  const KechoCosts& costs = node_.costs();
  const SimTime now = node_.host().engine().now();
  // One wire frame per *distinct* payload, shared by every member that
  // selected it — the common case is one payload per interest group, so
  // the cache is a short linear scan keyed by payload identity.
  std::vector<std::pair<const net::Message*, net::MessagePtr>> frames;
  std::vector<Member> sent;
  double cycles = 0.0;
  for (const Member& member : members_) {
    const net::MessagePtr payload = select(member.node);
    if (payload == nullptr) continue;  // member opted out of this event
    net::MessagePtr frame;
    for (const auto& [key, cached] : frames) {
      if (key == payload.get()) {
        frame = cached;
        break;
      }
    }
    if (frame == nullptr) {
      frame = encode_event(id_, node_.nic().node(), now, payload, trace);
      frames.emplace_back(payload.get(), frame);
    }
    if (transport_ == ChannelTransport::kDatagram) {
      node_.nic().send_datagram(member.node, Node::kDatagramEventPort, frame,
                                Node::kDatagramEventPort);
    } else {
      node_.transport_to(member.node)->send(frame);
    }
    cycles += costs.submit_base_cycles +
              costs.submit_per_byte_cycles * static_cast<double>(frame->size());
    if (node_.liveness_.enabled) sent.push_back(member);
  }
  if (node_.liveness_.enabled && !sent.empty()) node_.note_submission(sent);
  const SimDuration cost =
      seconds(cycles / node_.host().cpu().config().clock_hz);
  if (cost > SimDuration::zero()) node_.host().cpu().consume_kernel(cost);
  node_.tm_submits_.add();
  node_.tm_submit_us_.record(cost);
  node_.host().telemetry().record_span("kecho", "submit", now, now + cost);
  return cost;
}

std::size_t Channel::remote_member_count() const { return members_.size(); }

std::vector<std::pair<ChannelId, std::string>> Node::channels() const {
  std::vector<std::pair<ChannelId, std::string>> out;
  out.reserve(poll_list_.size());
  for (const Channel* channel : poll_list_) {
    out.emplace_back(channel->id(), channel->name());
  }
  return out;
}

Node::Node(host::Host& host, net::Nic& nic, net::NodeId registry_node,
           net::Port registry_port, KechoCosts costs, LivenessConfig liveness,
           RegistryClientConfig registry_client)
    : host_(host),
      nic_(nic),
      registry_node_(registry_node),
      registry_port_(registry_port),
      costs_(costs),
      liveness_(liveness),
      registry_client_(std::move(registry_client)),
      heartbeat_payload_(net::make_message({})),
      tm_submits_(host.telemetry().counter("kecho", "submits")),
      tm_receives_(host.telemetry().counter("kecho", "receives")),
      tm_heartbeats_(host.telemetry().counter("kecho", "heartbeats")),
      tm_evictions_(host.telemetry().counter("kecho", "evictions")),
      tm_join_retries_(host.telemetry().counter("kecho", "join_retries")),
      tm_removal_retries_(host.telemetry().counter("kecho", "removal_retries")),
      tm_cache_hits_(host.telemetry().counter("registry", "cache_hits")),
      tm_cache_misses_(host.telemetry().counter("registry", "cache_misses")),
      tm_cache_invalidations_(
          host.telemetry().counter("registry", "cache_invalidations")),
      tm_submit_us_(host.telemetry().latency("kecho", "submit_us")) {
  nic_.bind_datagram(kChannelPort,
                     [this](net::NodeId, net::Port, const net::MessagePtr& m) {
                       on_registry_datagram(m);
                     });
  nic_.bind_datagram(kDatagramEventPort,
                     [this](net::NodeId, net::Port, const net::MessagePtr& m) {
                       on_peer_message(m);
                     });
  listener_ = std::make_unique<net::TcpListener>(
      nic_, kChannelPort, net::TcpConfig{},
      [this](net::TcpConnection::Ptr conn) {
        conn->set_message_handler(
            [this](const net::MessagePtr& m) { on_peer_message(m); });
        accepted_.push_back(std::move(conn));
      });
  if (liveness_.enabled) start_heartbeat_timer();
}

Node::~Node() {
  heartbeat_timer_.cancel();
  for (auto& [key, handle] : pending_removals_) handle.cancel();
  for (auto& [name, channel] : channels_by_name_) channel->join_retry_.cancel();
  for (auto& [name, pending] : pending_lookups_) pending.retry.cancel();
}

Channel& Node::join(const std::string& name,
                    std::function<void(Channel&)> on_ready,
                    ChannelTransport transport) {
  auto it = channels_by_name_.find(name);
  if (it == channels_by_name_.end()) {
    auto channel = std::unique_ptr<Channel>{new Channel{*this, name}};
    channel->transport_ = transport;
    it = channels_by_name_.emplace(name, std::move(channel)).first;
    // Keep the drain list in name order regardless of join order: poll()
    // used to walk the name map, and drain order is trace-visible.
    poll_list_.insert(
        std::upper_bound(poll_list_.begin(), poll_list_.end(), it->second.get(),
                         [](const Channel* a, const Channel* b) {
                           return a->name() < b->name();
                         }),
        it->second.get());
    // Cache-first re-join: a fresh cached record makes the channel usable
    // immediately; the registry's response still re-applies authoritatively
    // (and tells the registry about this member either way).
    if (registry_client_.cache) try_cache_adopt(*it->second);
    send_join(*it->second);
  }
  Channel& channel = *it->second;
  if (on_ready) {
    if (channel.ready_) {
      on_ready(channel);
    } else {
      channel.on_ready_.push_back(std::move(on_ready));
    }
  }
  return channel;
}

net::NodeId Node::registry_target(int attempt) const {
  const std::vector<net::NodeId>& replicas = registry_client_.replicas;
  if (replicas.empty()) return registry_node_;
  // Attempt 0 goes to replica 0 (the birth leader); retries rotate so a
  // dead leader cannot absorb the whole storm — a follower forwards or
  // queues the write toward whoever leads next.
  return replicas[static_cast<std::size_t>(attempt) % replicas.size()];
}

void Node::send_join(Channel& channel) {
  const int attempt = channel.join_attempts_;
  nic_.send_datagram(
      registry_target(attempt), registry_port_,
      encode_join_request(channel.name_, Member{nic_.node(), kChannelPort}),
      kChannelPort);
  if (!retries_enabled()) return;
  channel.join_attempts_ = attempt + 1;
  channel.join_retry_.cancel();
  channel.join_retry_ = host_.engine().schedule_after(
      backoff_delay(attempt), [this, &channel] {
        if (!channel.ready_ && !crashed_) {
          tm_join_retries_.add();
          send_join(channel);
        }
      });
}

void Node::send_registry_removal(RegistryOp op, Member member, int attempt) {
  nic_.send_datagram(registry_target(attempt), registry_port_,
                     encode_member_removal(op, member), kChannelPort);
  if (!liveness_.enabled) return;
  const auto key = std::pair{static_cast<std::uint8_t>(op), member.node};
  auto it = pending_removals_.find(key);
  if (it != pending_removals_.end()) it->second.cancel();
  pending_removals_[key] = host_.engine().schedule_after(
      backoff_delay(attempt), [this, op, member, attempt] {
        if (!crashed_) {
          tm_removal_retries_.add();
          send_registry_removal(op, member, attempt + 1);
        }
      });
}

SimDuration Node::backoff_delay(int attempt) const {
  const int shift = std::min(attempt, 20);
  const double factor = static_cast<double>(std::uint32_t{1} << shift);
  SimDuration delay = std::min(liveness_.retry_base * factor,
                               liveness_.retry_cap);
  if (liveness_.retry_jitter > 0.0) {
    // Deterministic per-(node, attempt) jitter: a splitmix64-style hash
    // spreads a simultaneous storm's retries inside the jitter window, and
    // replays identically run-to-run (no RNG state, no platform variance).
    std::uint64_t h = (static_cast<std::uint64_t>(nic_.node()) << 20) ^
                      static_cast<std::uint64_t>(static_cast<unsigned>(attempt));
    h += 0x9e3779b97f4a7c15ull;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
    h ^= h >> 31;
    const double unit = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
    delay = delay * (1.0 + liveness_.retry_jitter * unit);
  }
  return delay;
}

void Node::start_heartbeat_timer() {
  heartbeat_timer_.cancel();
  heartbeat_timer_ = host_.engine().schedule_periodic(
      liveness_.heartbeat_period, [this] { liveness_tick(); });
}

void Node::liveness_tick() {
  const SimTime now = host_.engine().now();
  const SimDuration dead_after =
      liveness_.heartbeat_period * static_cast<double>(liveness_.miss_threshold);
  // Collect first: eviction mutates peer_liveness_.
  std::vector<net::NodeId> dead;
  for (const auto& [peer, state] : peer_liveness_) {
    if (now - state.last_heard > dead_after) dead.push_back(peer);
  }
  for (net::NodeId peer : dead) evict_peer(peer);
  for (auto& [peer, state] : peer_liveness_) {
    if (now - state.last_sent >= liveness_.heartbeat_period) {
      send_heartbeat(peer);
      state.last_sent = now;
    }
  }
}

void Node::send_heartbeat(net::NodeId peer) {
  const net::MessagePtr frame = encode_event(
      kHeartbeatChannel, nic_.node(), host_.engine().now(), heartbeat_payload_);
  transport_to(peer)->send(frame);
  ++heartbeats_sent_;
  tm_heartbeats_.add();
}

bool Node::member_learned(Member member) {
  // A reappearing peer invalidates any eviction of it still retrying
  // toward the registry: the queued request predates the re-join, and
  // replaying it would knock out a live member (a storm during registry
  // outages, when every survivor's eviction sits in its retry loop).
  const auto key =
      std::pair{static_cast<std::uint8_t>(RegistryOp::kMemberEvict), member.node};
  if (auto it = pending_removals_.find(key); it != pending_removals_.end()) {
    it->second.cancel();
    pending_removals_.erase(it);
  }
  const SimTime now = host_.engine().now();
  // A fresh peer starts with a full grace window before eviction.
  return peer_liveness_.try_emplace(member.node, PeerLiveness{now, now}).second;
}

void Node::reset_transports() {
  for (auto& [peer, conn] : transports_) conn->close();
  transports_.clear();
  for (auto& conn : accepted_) conn->close();
  accepted_.clear();
}

void Node::evict_peer(net::NodeId peer) {
  net::Port port = kChannelPort;
  for (const auto& [name, channel] : channels_by_name_) {
    for (const Member& m : channel->members_) {
      if (m.node == peer) port = m.port;
    }
  }
  forget_peer(peer);
  ++evictions_initiated_;
  tm_evictions_.add();
  DPROC_INFO() << "kecho node " << nic_.node() << ": peer " << peer
               << " silent past miss threshold; evicting";
  send_registry_removal(RegistryOp::kMemberEvict, Member{peer, port}, 0);
  notify_membership(MemberEventKind::kEvicted, peer);
}

void Node::forget_peer(net::NodeId peer) {
  for (auto& [name, channel] : channels_by_name_) {
    std::erase_if(channel->members_,
                  [peer](const Member& m) { return m.node == peer; });
  }
  auto it = transports_.find(peer);
  if (it != transports_.end()) {
    it->second->close();
    transports_.erase(it);
  }
  std::erase_if(accepted_, [peer](const net::TcpConnection::Ptr& conn) {
    if (conn->remote_node() != peer) return false;
    conn->close();
    return true;
  });
  peer_liveness_.erase(peer);
}

bool Node::member_of_any_channel(net::NodeId peer) const {
  for (const auto& [name, channel] : channels_by_name_) {
    for (const Member& m : channel->members_) {
      if (m.node == peer) return true;
    }
  }
  return false;
}

void Node::notify_membership(MemberEventKind kind, net::NodeId node) {
  // Flight-record the node-level transition at its single chokepoint, so
  // joins, graceful leaves and evictions all land in the post-mortem ring.
  switch (kind) {
    case MemberEventKind::kJoined:
      host_.flight().record(telemetry::Severity::kInfo,
                            telemetry::FlightSubsystem::kKecho,
                            telemetry::FlightCode::kMemberJoin, node);
      break;
    case MemberEventKind::kLeft:
      host_.flight().record(telemetry::Severity::kInfo,
                            telemetry::FlightSubsystem::kKecho,
                            telemetry::FlightCode::kMemberLeave, node);
      break;
    case MemberEventKind::kEvicted:
      host_.flight().record(
          telemetry::Severity::kWarn, telemetry::FlightSubsystem::kKecho,
          telemetry::FlightCode::kMemberEvict, node,
          static_cast<std::uint64_t>(liveness_.miss_threshold));
      break;
  }
  for (const MembershipListener& listener : membership_listeners_) {
    listener(kind, node);
  }
}

void Node::note_submission(const std::vector<Member>& members) {
  const SimTime now = host_.engine().now();
  for (const Member& member : members) {
    auto it = peer_liveness_.find(member.node);
    if (it != peer_liveness_.end()) it->second.last_sent = now;
  }
}

void Node::announce_leave() {
  heartbeat_timer_.cancel();
  send_registry_removal(RegistryOp::kMemberLeave,
                        Member{nic_.node(), kChannelPort}, 0);
}

void Node::crash() {
  crashed_ = true;
  heartbeat_timer_.cancel();
  for (auto& [key, handle] : pending_removals_) handle.cancel();
  pending_removals_.clear();
  for (auto& [name, channel] : channels_by_name_) {
    channel->join_retry_.cancel();
    channel->join_attempts_ = 0;
    channel->ready_ = false;
    channel->members_.clear();
    channel->rx_queue_.clear();
  }
  std::fill(channels_by_id_.begin(), channels_by_id_.end(), nullptr);
  for (auto& [peer, conn] : transports_) conn->close();
  transports_.clear();
  for (auto& conn : accepted_) conn->close();
  accepted_.clear();
  peer_liveness_.clear();
  // A kernel reboot loses the cached channel table with everything else.
  channel_cache_.clear();
  for (auto& [name, pending] : pending_lookups_) pending.retry.cancel();
  pending_lookups_.clear();
}

void Node::restart() {
  if (!crashed_) return;
  crashed_ = false;
  for (auto& [name, channel] : channels_by_name_) {
    if (registry_client_.cache) try_cache_adopt(*channel);
    send_join(*channel);
  }
  if (liveness_.enabled) start_heartbeat_timer();
}

void Node::apply_membership(Channel& channel, ChannelId id,
                            const std::vector<Member>& members) {
  channel.join_retry_.cancel();
  channel.join_attempts_ = 0;
  channel.id_ = id;
  // Rebuild (never append): a re-join response replaces the view, so a
  // crash-restart cannot duplicate members.
  channel.members_.clear();
  for (const Member& member : members) {
    if (member.node == nic_.node()) continue;
    channel.members_.push_back(member);
    if (member_learned(member)) {
      notify_membership(MemberEventKind::kJoined, member.node);
    }
  }
  channel.ready_ = true;
  if (channels_by_id_.size() <= id) channels_by_id_.resize(id + 1, nullptr);
  channels_by_id_[id] = &channel;
  auto callbacks = std::move(channel.on_ready_);
  channel.on_ready_.clear();
  for (auto& fn : callbacks) fn(channel);
}

const Node::CachedRecord* Node::fresh_cache_entry(const std::string& name) {
  auto it = channel_cache_.find(name);
  if (it == channel_cache_.end()) return nullptr;
  if (host_.engine().now() - it->second.stamped > registry_client_.cache_lease) {
    channel_cache_.erase(it);
    ++cache_stats_.expiries;
    return nullptr;
  }
  return &it->second;
}

void Node::cache_store(const std::string& name, ChannelId id, bool found,
                       const std::vector<Member>& members) {
  if (!registry_client_.cache) return;
  CachedRecord& record = channel_cache_[name];
  record.id = id;
  record.found = found;
  record.members = members;
  record.stamped = host_.engine().now();
}

bool Node::try_cache_adopt(Channel& channel) {
  const CachedRecord* record = fresh_cache_entry(channel.name_);
  if (record == nullptr || !record->found) return false;
  ++cache_stats_.hits;
  tm_cache_hits_.add();
  const std::int64_t staleness =
      (host_.engine().now() - record->stamped).ns();
  cache_stats_.max_served_staleness_ns =
      std::max(cache_stats_.max_served_staleness_ns, staleness);
  apply_membership(channel, record->id, record->members);
  return true;
}

void Node::lookup_members(const std::string& name, LookupCallback callback) {
  if (registry_client_.cache) {
    if (const CachedRecord* record = fresh_cache_entry(name)) {
      ++cache_stats_.hits;
      tm_cache_hits_.add();
      cache_stats_.max_served_staleness_ns =
          std::max(cache_stats_.max_served_staleness_ns,
                   (host_.engine().now() - record->stamped).ns());
      callback(JoinResponse{name, record->id, record->found, record->members});
      return;
    }
    ++cache_stats_.misses;
    tm_cache_misses_.add();
  }
  PendingLookup& pending = pending_lookups_[name];
  pending.callbacks.push_back(std::move(callback));
  if (pending.callbacks.size() > 1) return;  // request already in flight
  send_lookup(name);
}

void Node::send_lookup(const std::string& name) {
  auto it = pending_lookups_.find(name);
  if (it == pending_lookups_.end()) return;
  PendingLookup& pending = it->second;
  const int attempt = pending.attempts;
  // First attempt spreads reads across the replica set (followers serve
  // lookups); retries rotate so a dead replica is skipped next round.
  const std::vector<net::NodeId>& replicas = registry_client_.replicas;
  const net::NodeId target =
      replicas.empty()
          ? registry_node_
          : replicas[(lookup_rr_++ + static_cast<std::uint64_t>(attempt)) %
                     replicas.size()];
  nic_.send_datagram(target, registry_port_,
                     encode_lookup_request(name, Member{nic_.node(),
                                                        kChannelPort}),
                     kChannelPort);
  if (!retries_enabled()) return;
  pending.attempts = attempt + 1;
  pending.retry.cancel();
  pending.retry =
      host_.engine().schedule_after(backoff_delay(attempt), [this, name] {
        if (!crashed_) send_lookup(name);
      });
}

void Node::on_registry_datagram(const net::MessagePtr& message) {
  net::ByteReader r{message->header};
  const auto op = static_cast<RegistryOp>(r.u8());
  switch (op) {
    case RegistryOp::kJoinResponse: {
      JoinResponse response;
      if (!decode_join_response(r, /*lookup=*/false, response)) {
        DPROC_WARN() << "kecho node " << nic_.node()
                     << ": malformed join response";
        return;
      }
      auto it = channels_by_name_.find(response.name);
      if (it == channels_by_name_.end()) {
        DPROC_WARN() << "kecho node " << nic_.node()
                     << ": join response for unknown channel '"
                     << response.name << "'";
        return;
      }
      cache_store(response.name, response.id, true, response.members);
      apply_membership(*it->second, response.id, response.members);
      return;
    }
    case RegistryOp::kLookupResponse: {
      JoinResponse response;
      if (!decode_join_response(r, /*lookup=*/true, response)) {
        DPROC_WARN() << "kecho node " << nic_.node()
                     << ": malformed lookup response";
        return;
      }
      cache_store(response.name, response.id, response.found,
                  response.members);
      auto it = pending_lookups_.find(response.name);
      if (it == pending_lookups_.end()) return;
      it->second.retry.cancel();
      auto callbacks = std::move(it->second.callbacks);
      pending_lookups_.erase(it);
      for (LookupCallback& fn : callbacks) fn(response);
      return;
    }
    case RegistryOp::kCacheInvalidate: {
      net::CacheInvalidate invalidate;
      if (!net::CacheInvalidate::decode(r, invalidate)) return;
      channel_cache_.erase(invalidate.name);
      ++cache_stats_.invalidations;
      tm_cache_invalidations_.add();
      return;
    }
    case RegistryOp::kMemberNotify: {
      const ChannelId id = r.u32();
      Member member{r.u32(), r.u16()};
      if (!r.ok()) return;
      if (id >= channels_by_id_.size() || channels_by_id_[id] == nullptr) {
        return;
      }
      if (member.node == nic_.node()) return;
      Channel& channel = *channels_by_id_[id];
      auto& members = channel.members_;
      if (std::find(members.begin(), members.end(), member) == members.end()) {
        members.push_back(member);
        if (member_learned(member)) {
          notify_membership(MemberEventKind::kJoined, member.node);
        }
      }
      // The push is authoritative: refresh the cached record in place.
      if (registry_client_.cache) {
        auto cached = channel_cache_.find(channel.name_);
        if (cached != channel_cache_.end()) {
          auto& list = cached->second.members;
          if (std::find(list.begin(), list.end(), member) == list.end()) {
            list.push_back(member);
          }
          cached->second.stamped = host_.engine().now();
        }
      }
      return;
    }
    case RegistryOp::kMemberDrop: {
      const ChannelId id = r.u32();
      Member member{r.u32(), r.u16()};
      const auto reason = static_cast<DropReason>(r.u8());
      if (!r.ok()) return;
      Channel* channel =
          id < channels_by_id_.size() ? channels_by_id_[id] : nullptr;
      if (member.node == nic_.node()) {
        // The registry dropped *us*. After a leave that is expected; after
        // an eviction we are demonstrably alive to hear it, so the eviction
        // was spurious (e.g. a healed partition) — re-join immediately.
        if (channel == nullptr || crashed_) return;
        channel->ready_ = false;
        channel->members_.clear();
        channel_cache_.erase(channel->name_);  // stale by definition
        // Peers that processed the drop tore down their endpoints of our
        // cached transports; submitting into those half-open connections
        // would silently blackhole every future frame. Rebuild node-level
        // connectivity from scratch along with the membership.
        reset_transports();
        if (reason == DropReason::kEvict) send_join(*channel);
        return;
      }
      const bool known = peer_liveness_.contains(member.node);
      if (channel != nullptr) {
        std::erase(channel->members_, member);
        if (registry_client_.cache) {
          auto cached = channel_cache_.find(channel->name_);
          if (cached != channel_cache_.end()) {
            std::erase(cached->second.members, member);
            cached->second.stamped = host_.engine().now();
          }
        }
      }
      if (known && !member_of_any_channel(member.node)) {
        forget_peer(member.node);
        notify_membership(reason == DropReason::kLeave
                              ? MemberEventKind::kLeft
                              : MemberEventKind::kEvicted,
                          member.node);
      }
      return;
    }
    case RegistryOp::kOpAck: {
      const auto acked = static_cast<RegistryOp>(r.u8());
      Member member{r.u32(), r.u16()};
      if (!r.ok()) return;
      auto it = pending_removals_.find(
          std::pair{static_cast<std::uint8_t>(acked), member.node});
      if (it != pending_removals_.end()) {
        it->second.cancel();
        pending_removals_.erase(it);
      }
      return;
    }
    default:
      DPROC_WARN() << "kecho node " << nic_.node()
                   << ": unexpected registry op " << static_cast<int>(op);
      return;
  }
}

net::TcpConnection::Ptr& Node::transport_to(net::NodeId peer) {
  auto it = transports_.find(peer);
  if (it == transports_.end()) {
    auto conn = net::TcpConnection::connect(nic_, peer, kChannelPort);
    conn->set_message_handler(
        [this](const net::MessagePtr& m) { on_peer_message(m); });
    it = transports_.emplace(peer, std::move(conn)).first;
  }
  return it->second;
}

void Node::on_peer_message(const net::MessagePtr& message) {
  Event event;
  if (!decode_event_frame(message, event)) {
    DPROC_WARN() << "kecho node " << nic_.node() << ": malformed event frame";
    return;
  }
  if (event.trace.valid() && host_.telemetry().trace_enabled()) {
    // Wire latency: time between the sender's submit stamp and this frame
    // reaching our kernel. The event then sits in the channel rx queue
    // until the next poll(), which stamps kDeliver with the queueing delay.
    const std::int64_t now_ns = host_.engine().now().ns();
    host_.telemetry().record_hop(telemetry::Hop{
        event.trace.trace_id, event.trace.origin, event.channel,
        telemetry::HopStage::kArrive, now_ns,
        now_ns - event.trace.prev_hop_ns});
    event.trace.hop = static_cast<std::uint8_t>(telemetry::HopStage::kArrive);
    event.trace.prev_hop_ns = now_ns;
  }
  if (liveness_.enabled) {
    auto it = peer_liveness_.find(event.source);
    if (it != peer_liveness_.end()) {
      it->second.last_heard = host_.engine().now();
    }
  }
  if (event.channel == kHeartbeatChannel) return;  // liveness-only frame
  if (event.channel >= channels_by_id_.size() ||
      channels_by_id_[event.channel] == nullptr) {
    DPROC_DEBUG() << "kecho node " << nic_.node() << ": event for channel "
                  << event.channel << " not joined here";
    return;
  }
  channels_by_id_[event.channel]->rx_queue_.push_back(std::move(event));
}

PollStats Node::poll() {
  PollStats stats;
  const SimTime poll_start = host_.engine().now();
  const bool tracing = host_.telemetry().trace_enabled();
  double cycles = costs_.poll_base_cycles;
  for (Channel* channel : poll_list_) {
    while (!channel->rx_queue_.empty()) {
      Event event = std::move(channel->rx_queue_.front());
      channel->rx_queue_.pop_front();
      cycles += costs_.receive_base_cycles +
                costs_.receive_per_byte_cycles *
                    static_cast<double>(event.payload_size());
      ++channel->received_;
      ++stats.events_delivered;
      if (tracing && event.trace.valid()) {
        // Queueing delay: rx-queue arrival (kArrive) to this poll drain.
        const std::int64_t now_ns = poll_start.ns();
        host_.telemetry().record_hop(telemetry::Hop{
            event.trace.trace_id, event.trace.origin, event.channel,
            telemetry::HopStage::kDeliver, now_ns,
            now_ns - event.trace.prev_hop_ns});
        event.trace.hop =
            static_cast<std::uint8_t>(telemetry::HopStage::kDeliver);
        event.trace.prev_hop_ns = now_ns;
      }
      if (channel->handler_) channel->handler_(event);
    }
  }
  stats.cpu_cost = seconds(cycles / host_.cpu().config().clock_hz);
  host_.cpu().consume_kernel(stats.cpu_cost);
  tm_receives_.add(stats.events_delivered);
  host_.telemetry().record_span("kecho", "poll", poll_start,
                                poll_start + stats.cpu_cost);
  return stats;
}

}  // namespace dproc::kecho
