#include "dproc/kecho/node.hpp"

#include <algorithm>

#include "dproc/net/wire.hpp"
#include "dproc/util/logging.hpp"

namespace dproc::kecho {

namespace {

/// Bytes of the fixed event-frame header preceding the payload header:
/// channel (4) + source (4) + submit time (8) + payload header length (4).
constexpr std::size_t kFrameHeaderBytes = 20;

/// Event frame carried over the peer transport: fixed header + the
/// application payload's encoded header; bulk rides as declared body bytes.
/// The frame buffer is built exactly-sized in one allocation and then
/// shared (never copied) by every transport send and receiving channel.
net::MessagePtr encode_event(ChannelId channel, net::NodeId source,
                             SimTime submitted_at,
                             const net::MessagePtr& payload) {
  net::ByteWriter w;
  w.reserve(kFrameHeaderBytes + payload->header.size());
  w.u32(channel);
  w.u32(source);
  w.i64(submitted_at.ns());
  w.u32(static_cast<std::uint32_t>(payload->header.size()));
  w.bytes(payload->header);
  return net::make_message(w.take(), payload->body_bytes);
}

/// Zero-copy decode: validates the frame and records where the payload
/// starts; the event aliases the frame instead of materializing a payload.
bool decode_event(const net::MessagePtr& frame, Event& event) {
  net::ByteReader r{frame->header};
  event.channel = r.u32();
  event.source = r.u32();
  event.submitted_at = SimTime{r.i64()};
  const std::uint32_t payload_header_bytes = r.u32();
  if (!r.ok() || r.remaining() != payload_header_bytes) return false;
  event.frame = frame;
  event.payload_offset = kFrameHeaderBytes;
  return true;
}

}  // namespace

SimDuration Channel::submit(const net::MessagePtr& payload) {
  ++submitted_;
  const KechoCosts& costs = node_.costs();
  const net::MessagePtr frame =
      encode_event(id_, node_.nic().node(), node_.host().engine().now(), payload);
  // Every member is charged the same marshalling cost for the same frame;
  // compute it once outside the fan-out loop.
  const double per_member_cycles =
      costs.submit_base_cycles +
      costs.submit_per_byte_cycles * static_cast<double>(frame->size());
  for (const Member& member : members_) {
    if (transport_ == ChannelTransport::kDatagram) {
      node_.nic().send_datagram(member.node, Node::kDatagramEventPort, frame,
                                Node::kDatagramEventPort);
    } else {
      node_.transport_to(member.node)->send(frame);
    }
  }
  const double cycles = per_member_cycles * static_cast<double>(members_.size());
  const SimDuration cost =
      seconds(cycles / node_.host().cpu().config().clock_hz);
  if (cost > SimDuration::zero()) node_.host().cpu().consume_kernel(cost);
  return cost;
}

std::size_t Channel::remote_member_count() const { return members_.size(); }

Node::Node(host::Host& host, net::Nic& nic, net::NodeId registry_node,
           net::Port registry_port, KechoCosts costs)
    : host_(host),
      nic_(nic),
      registry_node_(registry_node),
      registry_port_(registry_port),
      costs_(costs) {
  nic_.bind_datagram(kChannelPort,
                     [this](net::NodeId, net::Port, const net::MessagePtr& m) {
                       on_registry_datagram(m);
                     });
  nic_.bind_datagram(kDatagramEventPort,
                     [this](net::NodeId, net::Port, const net::MessagePtr& m) {
                       on_peer_message(m);
                     });
  listener_ = std::make_unique<net::TcpListener>(
      nic_, kChannelPort, net::TcpConfig{},
      [this](net::TcpConnection::Ptr conn) {
        conn->set_message_handler(
            [this](const net::MessagePtr& m) { on_peer_message(m); });
        accepted_.push_back(std::move(conn));
      });
}

Channel& Node::join(const std::string& name,
                    std::function<void(Channel&)> on_ready,
                    ChannelTransport transport) {
  auto it = channels_by_name_.find(name);
  if (it == channels_by_name_.end()) {
    auto channel = std::unique_ptr<Channel>{new Channel{*this, name}};
    channel->transport_ = transport;
    it = channels_by_name_.emplace(name, std::move(channel)).first;
    // Keep the drain list in name order regardless of join order: poll()
    // used to walk the name map, and drain order is trace-visible.
    poll_list_.insert(
        std::upper_bound(poll_list_.begin(), poll_list_.end(), it->second.get(),
                         [](const Channel* a, const Channel* b) {
                           return a->name() < b->name();
                         }),
        it->second.get());
    nic_.send_datagram(
        registry_node_, registry_port_,
        encode_join_request(name, Member{nic_.node(), kChannelPort}),
        kChannelPort);
  }
  Channel& channel = *it->second;
  if (on_ready) {
    if (channel.ready_) {
      on_ready(channel);
    } else {
      channel.on_ready_.push_back(std::move(on_ready));
    }
  }
  return channel;
}

void Node::on_registry_datagram(const net::MessagePtr& message) {
  net::ByteReader r{message->header};
  const auto op = static_cast<RegistryOp>(r.u8());
  switch (op) {
    case RegistryOp::kJoinResponse: {
      const std::string name = r.str();
      const ChannelId id = r.u32();
      const std::uint32_t count = r.u32();
      auto it = channels_by_name_.find(name);
      if (it == channels_by_name_.end()) {
        DPROC_WARN() << "kecho node " << nic_.node()
                     << ": join response for unknown channel '" << name << "'";
        return;
      }
      Channel& channel = *it->second;
      channel.id_ = id;
      for (std::uint32_t i = 0; i < count; ++i) {
        Member member{r.u32(), r.u16()};
        if (member.node != nic_.node()) channel.members_.push_back(member);
      }
      if (!r.ok()) return;
      channel.ready_ = true;
      if (channels_by_id_.size() <= id) channels_by_id_.resize(id + 1, nullptr);
      channels_by_id_[id] = &channel;
      auto callbacks = std::move(channel.on_ready_);
      channel.on_ready_.clear();
      for (auto& fn : callbacks) fn(channel);
      return;
    }
    case RegistryOp::kMemberNotify: {
      const ChannelId id = r.u32();
      Member member{r.u32(), r.u16()};
      if (!r.ok()) return;
      if (id >= channels_by_id_.size() || channels_by_id_[id] == nullptr) {
        return;
      }
      if (member.node == nic_.node()) return;
      auto& members = channels_by_id_[id]->members_;
      if (std::find(members.begin(), members.end(), member) == members.end()) {
        members.push_back(member);
      }
      return;
    }
    case RegistryOp::kJoinRequest:
      DPROC_WARN() << "kecho node " << nic_.node()
                   << ": unexpected join request";
      return;
  }
}

net::TcpConnection::Ptr& Node::transport_to(net::NodeId peer) {
  auto it = transports_.find(peer);
  if (it == transports_.end()) {
    auto conn = net::TcpConnection::connect(nic_, peer, kChannelPort);
    conn->set_message_handler(
        [this](const net::MessagePtr& m) { on_peer_message(m); });
    it = transports_.emplace(peer, std::move(conn)).first;
  }
  return it->second;
}

void Node::on_peer_message(const net::MessagePtr& message) {
  Event event;
  if (!decode_event(message, event)) {
    DPROC_WARN() << "kecho node " << nic_.node() << ": malformed event frame";
    return;
  }
  if (event.channel >= channels_by_id_.size() ||
      channels_by_id_[event.channel] == nullptr) {
    DPROC_DEBUG() << "kecho node " << nic_.node() << ": event for channel "
                  << event.channel << " not joined here";
    return;
  }
  channels_by_id_[event.channel]->rx_queue_.push_back(std::move(event));
}

PollStats Node::poll() {
  PollStats stats;
  double cycles = costs_.poll_base_cycles;
  for (Channel* channel : poll_list_) {
    while (!channel->rx_queue_.empty()) {
      Event event = std::move(channel->rx_queue_.front());
      channel->rx_queue_.pop_front();
      cycles += costs_.receive_base_cycles +
                costs_.receive_per_byte_cycles *
                    static_cast<double>(event.payload_size());
      ++channel->received_;
      ++stats.events_delivered;
      if (channel->handler_) channel->handler_(event);
    }
  }
  stats.cpu_cost = seconds(cycles / host_.cpu().config().clock_hz);
  host_.cpu().consume_kernel(stats.cpu_cost);
  return stats;
}

}  // namespace dproc::kecho
