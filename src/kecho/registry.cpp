#include "dproc/kecho/registry.hpp"

#include <algorithm>

#include "dproc/net/wire.hpp"
#include "dproc/telemetry/telemetry.hpp"
#include "dproc/util/logging.hpp"

namespace dproc::kecho {

namespace {
net::MessagePtr encode_join_response(const std::string& name, ChannelId id,
                                     const std::vector<Member>& members) {
  net::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(RegistryOp::kJoinResponse));
  w.str(name);
  w.u32(id);
  w.u32(static_cast<std::uint32_t>(members.size()));
  for (const Member& m : members) {
    w.u32(m.node);
    w.u16(m.port);
  }
  return net::make_message(w.take());
}

net::MessagePtr encode_member_notify(ChannelId id, Member member) {
  net::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(RegistryOp::kMemberNotify));
  w.u32(id);
  w.u32(member.node);
  w.u16(member.port);
  return net::make_message(w.take());
}

net::MessagePtr encode_member_drop(ChannelId id, Member member,
                                   DropReason reason) {
  net::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(RegistryOp::kMemberDrop));
  w.u32(id);
  w.u32(member.node);
  w.u16(member.port);
  w.u8(static_cast<std::uint8_t>(reason));
  return net::make_message(w.take());
}

net::MessagePtr encode_op_ack(RegistryOp op, Member member) {
  net::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(RegistryOp::kOpAck));
  w.u8(static_cast<std::uint8_t>(op));
  w.u32(member.node);
  w.u16(member.port);
  return net::make_message(w.take());
}
}  // namespace

net::MessagePtr encode_join_request(const std::string& name, Member member) {
  net::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(RegistryOp::kJoinRequest));
  w.str(name);
  w.u32(member.node);
  w.u16(member.port);
  return net::make_message(w.take());
}

net::MessagePtr encode_member_removal(RegistryOp op, Member member) {
  net::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(op));
  w.u32(member.node);
  w.u16(member.port);
  return net::make_message(w.take());
}

RegistryServer::RegistryServer(net::Nic& nic, net::Port port)
    : nic_(nic), port_(port) {
  nic_.bind_datagram(port_, [this](net::NodeId from, net::Port from_port,
                                   const net::MessagePtr& message) {
    handle_request(from, from_port, message);
  });
}

void RegistryServer::set_telemetry(telemetry::Registry* telemetry) {
  if (telemetry == nullptr) {
    tm_joins_ = tm_duplicate_joins_ = tm_leaves_ = tm_evictions_ =
        tm_dropped_offline_ = nullptr;
    return;
  }
  tm_joins_ = &telemetry->counter("registry", "joins");
  tm_duplicate_joins_ = &telemetry->counter("registry", "duplicate_joins");
  tm_leaves_ = &telemetry->counter("registry", "leaves");
  tm_evictions_ = &telemetry->counter("registry", "evictions");
  tm_dropped_offline_ = &telemetry->counter("registry", "dropped_offline");
}

std::vector<Member> RegistryServer::channel_members(
    const std::string& name) const {
  auto it = channels_.find(name);
  return it == channels_.end() ? std::vector<Member>{} : it->second.members;
}

std::vector<std::string> RegistryServer::channel_names() const {
  std::vector<std::string> names;
  names.reserve(channels_.size());
  for (const auto& [name, record] : channels_) names.push_back(name);
  return names;
}

void RegistryServer::handle_request(net::NodeId from, net::Port from_port,
                                    const net::MessagePtr& message) {
  if (!online_) {
    ++stats_.dropped_while_offline;
    if (tm_dropped_offline_) tm_dropped_offline_->add();
    return;
  }
  net::ByteReader r{message->header};
  const auto op = static_cast<RegistryOp>(r.u8());
  switch (op) {
    case RegistryOp::kJoinRequest: {
      const std::string name = r.str();
      Member member{r.u32(), r.u16()};
      if (!r.ok()) {
        DPROC_WARN() << "registry: malformed join request from node " << from;
        return;
      }

      auto [it, created] = channels_.try_emplace(name);
      ChannelRecord& record = it->second;
      if (created) {
        record.id = next_id_++;
        record.name = name;
        DPROC_INFO() << "registry: created channel '" << name << "' id "
                     << record.id;
      }

      const bool already_member =
          std::find(record.members.begin(), record.members.end(), member) !=
          record.members.end();
      // Reply with the membership minus the joiner itself (on an idempotent
      // re-join the joiner must not learn itself as a peer), then notify the
      // existing members about a genuinely new member.
      std::vector<Member> others;
      others.reserve(record.members.size());
      for (const Member& m : record.members) {
        if (m != member) others.push_back(m);
      }
      nic_.send_datagram(from, member.port,
                         encode_join_response(name, record.id, others));
      if (already_member) {
        ++stats_.duplicate_joins;
        if (tm_duplicate_joins_) tm_duplicate_joins_->add();
      } else {
        ++stats_.joins;
        if (tm_joins_) tm_joins_->add();
        for (const Member& existing : record.members) {
          nic_.send_datagram(existing.node, existing.port,
                             encode_member_notify(record.id, member));
        }
        record.members.push_back(member);
      }
      return;
    }
    case RegistryOp::kMemberLeave:
    case RegistryOp::kMemberEvict: {
      Member member{r.u32(), r.u16()};
      if (!r.ok()) {
        DPROC_WARN() << "registry: malformed removal request from node "
                     << from;
        return;
      }
      remove_member(member, op == RegistryOp::kMemberLeave
                                ? DropReason::kLeave
                                : DropReason::kEvict);
      // Always ack, even when the member was already gone: the sender may
      // be retrying through an outage and needs closure either way.
      nic_.send_datagram(from, from_port != 0 ? from_port : member.port,
                         encode_op_ack(op, member));
      return;
    }
    default:
      DPROC_WARN() << "registry: unexpected op " << static_cast<int>(op)
                   << " from node " << from;
      return;
  }
}

void RegistryServer::remove_member(Member member, DropReason reason) {
  bool removed_any = false;
  for (auto& [name, record] : channels_) {
    auto it = std::find(record.members.begin(), record.members.end(), member);
    if (it == record.members.end()) continue;
    record.members.erase(it);
    removed_any = true;
    // Survivors drop the member; the member itself also hears about it so a
    // spurious eviction triggers a re-join rather than a silent split-brain.
    for (const Member& survivor : record.members) {
      nic_.send_datagram(survivor.node, survivor.port,
                         encode_member_drop(record.id, member, reason));
    }
    nic_.send_datagram(member.node, member.port,
                       encode_member_drop(record.id, member, reason));
  }
  if (removed_any) {
    if (reason == DropReason::kLeave) {
      ++stats_.leaves;
      if (tm_leaves_) tm_leaves_->add();
    } else {
      ++stats_.evictions;
      if (tm_evictions_) tm_evictions_->add();
    }
    DPROC_INFO() << "registry: member node " << member.node << " removed ("
                 << (reason == DropReason::kLeave ? "leave" : "evict") << ")";
  }
}

}  // namespace dproc::kecho
