#include "dproc/kecho/registry.hpp"

#include <algorithm>

#include "dproc/net/wire.hpp"
#include "dproc/util/logging.hpp"

namespace dproc::kecho {

namespace {
net::MessagePtr encode_join_response(const std::string& name, ChannelId id,
                                     const std::vector<Member>& members) {
  net::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(RegistryOp::kJoinResponse));
  w.str(name);
  w.u32(id);
  w.u32(static_cast<std::uint32_t>(members.size()));
  for (const Member& m : members) {
    w.u32(m.node);
    w.u16(m.port);
  }
  return net::make_message(w.take());
}

net::MessagePtr encode_member_notify(ChannelId id, Member member) {
  net::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(RegistryOp::kMemberNotify));
  w.u32(id);
  w.u32(member.node);
  w.u16(member.port);
  return net::make_message(w.take());
}
}  // namespace

net::MessagePtr encode_join_request(const std::string& name, Member member) {
  net::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(RegistryOp::kJoinRequest));
  w.str(name);
  w.u32(member.node);
  w.u16(member.port);
  return net::make_message(w.take());
}

RegistryServer::RegistryServer(net::Nic& nic, net::Port port)
    : nic_(nic), port_(port) {
  nic_.bind_datagram(port_, [this](net::NodeId from, net::Port,
                                   const net::MessagePtr& message) {
    handle_request(from, message);
  });
}

void RegistryServer::handle_request(net::NodeId from,
                                    const net::MessagePtr& message) {
  net::ByteReader r{message->header};
  const auto op = static_cast<RegistryOp>(r.u8());
  if (op != RegistryOp::kJoinRequest) {
    DPROC_WARN() << "registry: unexpected op from node " << from;
    return;
  }
  const std::string name = r.str();
  Member member{r.u32(), r.u16()};
  if (!r.ok()) {
    DPROC_WARN() << "registry: malformed join request from node " << from;
    return;
  }

  auto [it, created] = channels_.try_emplace(name);
  ChannelRecord& record = it->second;
  if (created) {
    record.id = next_id_++;
    record.name = name;
    DPROC_INFO() << "registry: created channel '" << name << "' id "
                 << record.id;
  }

  // Reply with the membership as it was before this join, then notify the
  // existing members about the newcomer.
  nic_.send_datagram(from, member.port,
                     encode_join_response(name, record.id, record.members));
  const bool already_member =
      std::find(record.members.begin(), record.members.end(), member) !=
      record.members.end();
  if (!already_member) {
    for (const Member& existing : record.members) {
      nic_.send_datagram(existing.node, existing.port,
                         encode_member_notify(record.id, member));
    }
    record.members.push_back(member);
  }
}

}  // namespace dproc::kecho
