#include "dproc/kecho/registry.hpp"

#include <algorithm>

#include "dproc/net/wire.hpp"
#include "dproc/telemetry/flight.hpp"
#include "dproc/telemetry/telemetry.hpp"
#include "dproc/util/logging.hpp"

namespace dproc::kecho {

namespace {
net::MessagePtr encode_join_response(const std::string& name, ChannelId id,
                                     const std::vector<Member>& members) {
  net::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(RegistryOp::kJoinResponse));
  w.str(name);
  w.u32(id);
  w.u32(static_cast<std::uint32_t>(members.size()));
  for (const Member& m : members) {
    w.u32(m.node);
    w.u16(m.port);
  }
  return net::make_message(w.take());
}

net::MessagePtr encode_lookup_response(const std::string& name, bool found,
                                       ChannelId id,
                                       const std::vector<Member>& members) {
  net::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(RegistryOp::kLookupResponse));
  w.str(name);
  w.u8(found ? 1 : 0);
  w.u32(id);
  w.u32(static_cast<std::uint32_t>(members.size()));
  for (const Member& m : members) {
    w.u32(m.node);
    w.u16(m.port);
  }
  return net::make_message(w.take());
}

net::MessagePtr encode_member_notify(ChannelId id, Member member) {
  net::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(RegistryOp::kMemberNotify));
  w.u32(id);
  w.u32(member.node);
  w.u16(member.port);
  return net::make_message(w.take());
}

net::MessagePtr encode_member_drop(ChannelId id, Member member,
                                   DropReason reason) {
  net::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(RegistryOp::kMemberDrop));
  w.u32(id);
  w.u32(member.node);
  w.u16(member.port);
  w.u8(static_cast<std::uint8_t>(reason));
  return net::make_message(w.take());
}

net::MessagePtr encode_op_ack(RegistryOp op, Member member) {
  net::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(RegistryOp::kOpAck));
  w.u8(static_cast<std::uint8_t>(op));
  w.u32(member.node);
  w.u16(member.port);
  return net::make_message(w.take());
}
}  // namespace

net::MessagePtr encode_join_request(const std::string& name, Member member) {
  net::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(RegistryOp::kJoinRequest));
  w.str(name);
  w.u32(member.node);
  w.u16(member.port);
  return net::make_message(w.take());
}

net::MessagePtr encode_member_removal(RegistryOp op, Member member) {
  net::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(op));
  w.u32(member.node);
  w.u16(member.port);
  return net::make_message(w.take());
}

net::MessagePtr encode_lookup_request(const std::string& name,
                                      Member reply_to) {
  net::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(RegistryOp::kLookupRequest));
  w.str(name);
  w.u32(reply_to.node);
  w.u16(reply_to.port);
  return net::make_message(w.take());
}

bool decode_join_response(net::ByteReader& r, bool lookup, JoinResponse& out) {
  out.name = r.str();
  out.found = lookup ? r.u8() != 0 : true;
  out.id = r.u32();
  const std::uint32_t count = r.u32();
  // Validate the declared count against the bytes actually present before
  // reserving: a corrupted count must neither over-allocate nor yield a
  // partially decoded member list.
  if (!r.ok() || r.remaining() < static_cast<std::size_t>(count) * 6) {
    return false;
  }
  out.members.clear();
  out.members.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    out.members.push_back(Member{r.u32(), r.u16()});
  }
  return r.ok();
}

RegistryServer::RegistryServer(net::Nic& nic, net::Port port)
    : nic_(nic), port_(port) {
  nic_.bind_datagram(port_, [this](net::NodeId from, net::Port from_port,
                                   const net::MessagePtr& message) {
    handle_request(from, from_port, message);
  });
}

RegistryServer::RegistryServer(net::Nic& nic, ReplicaSetup setup,
                               net::Port port)
    : RegistryServer(nic, port) {
  replicated_ = true;
  replica_id_ = setup.replica_id;
  replica_nodes_ = std::move(setup.replica_nodes);
  rep_ = setup.config;
  // Replica 0 leads from birth (no failover counted); every view starts
  // with a full grace window so a follower cannot usurp before the first
  // heartbeat round.
  was_leader_ = replica_id_ == 0;
  views_.resize(replica_nodes_.size());
  const SimTime start = now();
  for (ReplicaView& view : views_) view.last_heard = start;
  heartbeat_timer_ = nic_.fabric().engine().schedule_periodic(
      rep_.heartbeat_period, [this] { heartbeat_tick(); });
}

RegistryServer::~RegistryServer() { heartbeat_timer_.cancel(); }

SimTime RegistryServer::now() const { return nic_.fabric().engine().now(); }

void RegistryServer::set_online(bool online) {
  if (online == online_) return;
  online_ = online;
  if (flight_) {
    flight_->record(online_ ? telemetry::Severity::kInfo
                            : telemetry::Severity::kError,
                    telemetry::FlightSubsystem::kRegistry,
                    online_ ? telemetry::FlightCode::kRegistryOnline
                            : telemetry::FlightCode::kRegistryOutage,
                    replica_id_);
  }
  if (!replicated_) return;
  if (!online_) {
    // The directory process died: parked writes die with it (the clients
    // retry against the other replicas).
    queued_writes_.clear();
    return;
  }
  // Back from the dead. Everything since the crash is unknown — including
  // mutations this replica applied as leader whose sync frames never left
  // the node. Wipe the record versions so the snapshot overwrites the table
  // wholesale (a stale record must never win a version comparison against
  // the survivors' history), and sit out one full lease before counting
  // toward leadership so the world is heard before it can be led.
  recovering_ = true;
  recovery_target_ = 0;
  version_ = 0;
  for (auto& [name, record] : channels_) record.version = 0;
  lookup_cachers_.clear();
  not_before_ = now() + rep_.lease();
  if (was_leader_) {
    was_leader_ = false;
    if (tm_role_) tm_role_->set(0.0);
  }
  DPROC_INFO() << "registry replica " << replica_id_
               << ": back online, recovering from peers";
  request_snapshot();
}

void RegistryServer::request_snapshot() {
  net::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(RegistryOp::kSyncRequest));
  w.u32(replica_id_);
  const net::MessagePtr request = net::make_message(w.take());
  for (std::uint32_t r = 0; r < replica_nodes_.size(); ++r) {
    if (r == replica_id_) continue;
    nic_.send_datagram(replica_nodes_[r], port_, request, port_);
  }
}

void RegistryServer::set_telemetry(telemetry::Registry* telemetry) {
  if (telemetry == nullptr) {
    tm_joins_ = tm_duplicate_joins_ = tm_leaves_ = tm_evictions_ =
        tm_drops_offline_ = tm_drops_malformed_ = tm_drops_unknown_op_ =
            tm_syncs_sent_ = tm_syncs_applied_ = tm_forwards_ = tm_failovers_ =
                nullptr;
    tm_role_ = nullptr;
    return;
  }
  tm_joins_ = &telemetry->counter("registry", "joins");
  tm_duplicate_joins_ = &telemetry->counter("registry", "duplicate_joins");
  tm_leaves_ = &telemetry->counter("registry", "leaves");
  tm_evictions_ = &telemetry->counter("registry", "evictions");
  tm_drops_offline_ = &telemetry->counter("registry", "drops_offline");
  tm_drops_malformed_ = &telemetry->counter("registry", "drops_malformed");
  tm_drops_unknown_op_ = &telemetry->counter("registry", "drops_unknown_op");
  tm_syncs_sent_ = &telemetry->counter("registry", "syncs_sent");
  tm_syncs_applied_ = &telemetry->counter("registry", "syncs_applied");
  tm_forwards_ = &telemetry->counter("registry", "forwards");
  tm_failovers_ = &telemetry->counter("registry", "failovers");
  tm_role_ = &telemetry->gauge("registry", "role");
  tm_role_->set(is_leader() ? 1.0 : 0.0);
}

const std::vector<Member>& RegistryServer::channel_members(
    const std::string& name) const {
  static const std::vector<Member> kNoMembers;
  auto it = channels_.find(name);
  return it == channels_.end() ? kNoMembers : it->second.members;
}

std::vector<std::string_view> RegistryServer::channel_names() const {
  std::vector<std::string_view> names;
  names.reserve(channels_.size());
  for (const auto& [name, record] : channels_) names.push_back(name);
  return names;
}

// --- leadership -----------------------------------------------------------

bool RegistryServer::replica_live(std::uint32_t r) const {
  if (r == replica_id_) {
    return online_ && !recovering_ && now() >= not_before_;
  }
  const ReplicaView& view = views_[r];
  if (view.recovering) return false;
  return now() - view.last_heard <= rep_.lease();
}

std::uint32_t RegistryServer::leader_id() const {
  if (!replicated_) return 0;
  for (std::uint32_t r = 0; r < views_.size(); ++r) {
    if (replica_live(r)) return r;
  }
  return replica_id_;  // nobody live in this view — degenerate self-lead
}

bool RegistryServer::is_leader() const {
  if (!replicated_) return true;
  return online_ && !recovering_ && leader_id() == replica_id_;
}

void RegistryServer::heartbeat_tick() {
  if (!online_) return;  // a crashed directory process heartbeats nobody
  net::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(RegistryOp::kReplicaHeartbeat));
  w.u32(replica_id_);
  w.u32(epoch_);
  w.u8(recovering_ ? 1 : 0);
  w.u64(version_);
  w.u32(next_id_);
  const net::MessagePtr beat = net::make_message(w.take());
  for (std::uint32_t r = 0; r < replica_nodes_.size(); ++r) {
    if (r == replica_id_) continue;
    nic_.send_datagram(replica_nodes_[r], port_, beat, port_);
  }
  if (recovering_) {
    // Snapshot requests are plain datagrams: re-ask every tick until the
    // done marker lands, so a request lost to a crashing peer cannot wedge
    // recovery. If — a full grace window past our return — no peer is both
    // fresh and itself recovered, there is nobody to recover from (total
    // outage restart, or sole survivor): our table is as good as any.
    if (now() >= not_before_) {
      bool any_source = false;
      for (std::uint32_t r = 0; r < views_.size(); ++r) {
        if (r == replica_id_ || views_[r].recovering) continue;
        if (now() - views_[r].last_heard <= rep_.lease()) any_source = true;
      }
      if (!any_source) {
        recovering_ = false;
        DPROC_INFO() << "registry replica " << replica_id_
                     << ": no recovery source in view; serving as-is";
      }
    }
    if (recovering_) request_snapshot();
  }
  check_leadership();
  if (queued_writes_.empty()) return;
  if (is_leader()) {
    drain_queued_writes();
  } else {
    // Forward the parked writes once a live leader is back in view.
    const std::uint32_t leader = leader_id();
    if (leader != replica_id_ &&
        now() - views_[leader].last_heard <= rep_.heartbeat_period * 2.0) {
      std::deque<QueuedWrite> parked;
      parked.swap(queued_writes_);
      for (QueuedWrite& write : parked) {
        net::ByteWriter fw;
        fw.u8(static_cast<std::uint8_t>(RegistryOp::kForward));
        fw.u32(write.from);
        fw.u16(write.from_port);
        fw.u32(static_cast<std::uint32_t>(write.message->header.size()));
        fw.bytes(write.message->header);
        nic_.send_datagram(replica_nodes_[leader], port_,
                           net::make_message(fw.take()), port_);
        ++stats_.forwards;
        if (tm_forwards_) tm_forwards_->add();
      }
    }
  }
}

void RegistryServer::check_leadership() {
  // Record the lease expiry of a leader this replica stops seeing as live:
  // the first symptom of a dead leader, before any election completes.
  const std::uint32_t leader = leader_id();
  if (leader != last_leader_view_) {
    if (flight_ && !replica_live(last_leader_view_)) {
      flight_->record(telemetry::Severity::kWarn,
                      telemetry::FlightSubsystem::kRegistry,
                      telemetry::FlightCode::kLeaseExpired, last_leader_view_);
    }
    last_leader_view_ = leader;
  }
  const bool lead = is_leader();
  if (lead && !was_leader_) {
    become_leader();
  } else if (!lead && was_leader_) {
    was_leader_ = false;
    if (tm_role_) tm_role_->set(0.0);
    DPROC_INFO() << "registry replica " << replica_id_
                 << ": yielding leadership to replica " << leader_id();
  }
}

void RegistryServer::become_leader() {
  for (const ReplicaView& view : views_) {
    epoch_ = std::max(epoch_, view.epoch);
    next_id_ = std::max(next_id_, view.next_id);
  }
  ++epoch_;
  // Skip past any ids the dead leader may have assigned whose sync frames
  // never arrived: ids stay dense enough for the clients' id-indexed
  // channel tables, but can never collide across a failover.
  next_id_ += rep_.failover_id_gap;
  was_leader_ = true;
  ++stats_.failovers;
  if (tm_failovers_) tm_failovers_->add();
  if (tm_role_) tm_role_->set(1.0);
  if (flight_) {
    flight_->record(telemetry::Severity::kWarn,
                    telemetry::FlightSubsystem::kRegistry,
                    telemetry::FlightCode::kLeaderElected, replica_id_, epoch_);
  }
  DPROC_INFO() << "registry replica " << replica_id_
               << ": assuming leadership (epoch " << epoch_ << ", next id "
               << next_id_ << ", " << queued_writes_.size()
               << " queued writes)";
  drain_queued_writes();
}

void RegistryServer::drain_queued_writes() {
  std::deque<QueuedWrite> parked;
  parked.swap(queued_writes_);
  for (QueuedWrite& write : parked) {
    handle_request(write.from, write.from_port, write.message);
  }
}

bool RegistryServer::accept_write(net::NodeId from, net::Port from_port,
                                  const net::MessagePtr& message) {
  if (is_leader()) return true;
  const std::uint32_t leader = leader_id();
  // Forward to a leader recently heard from — and park a copy regardless.
  // All three client writes are idempotent, so the parked duplicate is
  // harmless when the forward lands, and it is the write's lifeline when
  // the forward was aimed at a corpse the lease has not yet declared dead:
  // the queue drains toward whoever leads next, possibly this replica.
  if (leader != replica_id_ &&
      now() - views_[leader].last_heard <= rep_.heartbeat_period * 2.0) {
    net::ByteWriter w;
    w.u8(static_cast<std::uint8_t>(RegistryOp::kForward));
    w.u32(from);
    w.u16(from_port);
    w.u32(static_cast<std::uint32_t>(message->header.size()));
    w.bytes(message->header);
    nic_.send_datagram(replica_nodes_[leader], port_,
                       net::make_message(w.take()), port_);
    ++stats_.forwards;
    if (tm_forwards_) tm_forwards_->add();
  }
  if (queued_writes_.size() >= kMaxQueuedWrites) {
    ++stats_.drops_queue_full;
    return false;
  }
  queued_writes_.push_back(QueuedWrite{from, from_port, message});
  ++stats_.queued_writes;
  return false;
}

// --- replication traffic --------------------------------------------------

void RegistryServer::send_sync_record(net::NodeId to,
                                      const ChannelRecord& record) const {
  net::RegistrySync sync;
  sync.table_version = record.version;
  sync.next_id = next_id_;
  sync.channel_id = record.id;
  sync.name = record.name;
  sync.members.reserve(record.members.size());
  for (const Member& m : record.members) {
    sync.members.push_back(net::RegistrySync::Member{m.node, m.port});
  }
  net::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(RegistryOp::kRegistrySync));
  sync.encode(w);
  nic_.send_datagram(to, port_, net::make_message(w.take()), port_);
}

void RegistryServer::replicate_mutation(ChannelRecord& record,
                                        const Member* removed) {
  if (!replicated_) return;
  record.version = ++version_;
  for (std::uint32_t r = 0; r < replica_nodes_.size(); ++r) {
    if (r == replica_id_) continue;
    send_sync_record(replica_nodes_[r], record);
    ++stats_.syncs_sent;
    if (tm_syncs_sent_) tm_syncs_sent_->add();
  }
  invalidate_cachers(record.name, record.version, removed);
}

void RegistryServer::invalidate_cachers(const std::string& name,
                                        std::uint64_t version,
                                        const Member* removed) {
  if (!rep_.client_cache) return;
  // Lease invalidation: every client this replica served a lookup response
  // for drops its cached record (members need none — they receive the
  // authoritative kMemberNotify/kMemberDrop pushes), plus the member just
  // removed — the node most likely to serve a stale record. Each replica
  // invalidates its own lookup audience: the leader on mutation, the
  // followers when the sync record lands.
  auto cachers = lookup_cachers_.find(name);
  const bool any_cachers =
      cachers != lookup_cachers_.end() && !cachers->second.empty();
  if (!any_cachers && removed == nullptr) return;
  net::CacheInvalidate invalidate;
  invalidate.table_version = version;
  invalidate.name = name;
  net::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(RegistryOp::kCacheInvalidate));
  invalidate.encode(w);
  const net::MessagePtr frame = net::make_message(w.take());
  if (any_cachers) {
    for (const Member& m : cachers->second) {
      nic_.send_datagram(m.node, m.port, frame, port_);
      ++stats_.invalidations_sent;
    }
    cachers->second.clear();
  }
  if (removed != nullptr) {
    nic_.send_datagram(removed->node, removed->port, frame, port_);
    ++stats_.invalidations_sent;
  }
}

void RegistryServer::apply_sync(const net::RegistrySync& sync) {
  auto [it, created] = channels_.try_emplace(sync.name);
  ChannelRecord& record = it->second;
  if (!created && sync.table_version <= record.version) return;  // stale
  record.id = sync.channel_id;
  record.name = sync.name;
  record.version = sync.table_version;
  record.members.clear();
  record.members.reserve(sync.members.size());
  for (const net::RegistrySync::Member& m : sync.members) {
    record.members.push_back(Member{m.node, m.port});
  }
  version_ = std::max(version_, sync.table_version);
  next_id_ = std::max(next_id_, sync.next_id);
  ++stats_.syncs_applied;
  if (tm_syncs_applied_) tm_syncs_applied_->add();
  if (flight_) {
    flight_->record(telemetry::Severity::kDebug,
                    telemetry::FlightSubsystem::kRegistry,
                    telemetry::FlightCode::kSyncApplied, replica_id_,
                    sync.table_version);
  }
  invalidate_cachers(record.name, record.version, nullptr);
}

void RegistryServer::handle_replica_op(net::NodeId from, RegistryOp op,
                                       net::ByteReader& r) {
  switch (op) {
    case RegistryOp::kReplicaHeartbeat: {
      const std::uint32_t id = r.u32();
      const std::uint32_t peer_epoch = r.u32();
      const bool peer_recovering = r.u8() != 0;
      const std::uint64_t peer_version = r.u64();
      const ChannelId peer_next_id = r.u32();
      if (!r.ok() || id >= views_.size() || id == replica_id_) {
        ++stats_.drops_malformed;
        if (tm_drops_malformed_) tm_drops_malformed_->add();
        return;
      }
      ReplicaView& view = views_[id];
      view.last_heard = now();
      view.epoch = peer_epoch;
      view.version = peer_version;
      view.next_id = peer_next_id;
      view.recovering = peer_recovering;
      (void)from;
      if (!peer_recovering && peer_version > version_) {
        // A recovered peer carries history we missed (mutations applied
        // while we were presumed dead, or synced past us during a
        // failover). Snapshot before counting toward leadership again —
        // per-record version comparisons make duplicate snapshots cheap.
        if (!recovering_) {
          recovering_ = true;
          recovery_target_ = peer_version;
          if (was_leader_) {
            was_leader_ = false;
            if (tm_role_) tm_role_->set(0.0);
          }
          DPROC_INFO() << "registry replica " << replica_id_
                       << ": behind replica " << id << " (version "
                       << peer_version << " > " << version_
                       << "); recovering";
          request_snapshot();
        } else {
          recovery_target_ = std::max(recovery_target_, peer_version);
        }
      } else if (!peer_recovering && peer_epoch > epoch_ && !recovering_) {
        // Same table version but a newer epoch: a failover happened with no
        // mutations since — the table is already current, adopt the epoch.
        epoch_ = peer_epoch;
      }
      check_leadership();
      return;
    }
    case RegistryOp::kRegistrySync: {
      net::RegistrySync sync;
      if (!net::RegistrySync::decode(r, sync)) {
        ++stats_.drops_malformed;
        if (tm_drops_malformed_) tm_drops_malformed_->add();
        return;
      }
      apply_sync(sync);
      return;
    }
    case RegistryOp::kSyncRequest: {
      const std::uint32_t requester = r.u32();
      if (!r.ok() || requester >= replica_nodes_.size() ||
          requester == replica_id_) {
        ++stats_.drops_malformed;
        if (tm_drops_malformed_) tm_drops_malformed_->add();
        return;
      }
      if (recovering_) return;  // cannot seed a snapshot from a stale table
      const net::NodeId to = replica_nodes_[requester];
      for (const auto& [name, record] : channels_) {
        send_sync_record(to, record);
        ++stats_.syncs_sent;
        if (tm_syncs_sent_) tm_syncs_sent_->add();
      }
      net::ByteWriter w;
      w.u8(static_cast<std::uint8_t>(RegistryOp::kSyncDone));
      w.u64(version_);
      w.u32(epoch_);
      nic_.send_datagram(to, port_, net::make_message(w.take()), port_);
      return;
    }
    case RegistryOp::kSyncDone: {
      const std::uint64_t snapshot_version = r.u64();
      const std::uint32_t snapshot_epoch = r.u32();
      if (!r.ok()) {
        ++stats_.drops_malformed;
        if (tm_drops_malformed_) tm_drops_malformed_->add();
        return;
      }
      if (!recovering_) return;
      // Sync records can land after the done marker only if reordered —
      // the fabric is FIFO per route, so reaching the snapshot version
      // means the whole stream arrived.
      if (version_ >= std::max(snapshot_version, recovery_target_) ||
          snapshot_version >= recovery_target_) {
        recovering_ = false;
        epoch_ = std::max(epoch_, snapshot_epoch);
        DPROC_INFO() << "registry replica " << replica_id_
                     << ": recovery complete at version " << version_;
        check_leadership();
      }
      return;
    }
    default:
      ++stats_.drops_unknown_op;
      if (tm_drops_unknown_op_) tm_drops_unknown_op_->add();
      return;
  }
}

// --- request dispatch -----------------------------------------------------

void RegistryServer::handle_request(net::NodeId from, net::Port from_port,
                                    const net::MessagePtr& message) {
  if (!online_) {
    ++stats_.drops_offline;
    if (tm_drops_offline_) tm_drops_offline_->add();
    return;
  }
  net::ByteReader r{message->header};
  const auto op = static_cast<RegistryOp>(r.u8());
  if (!r.ok()) {
    ++stats_.drops_malformed;
    if (tm_drops_malformed_) tm_drops_malformed_->add();
    return;
  }
  switch (op) {
    case RegistryOp::kJoinRequest:
    case RegistryOp::kMemberLeave:
    case RegistryOp::kMemberEvict:
      if (replicated_ && !accept_write(from, from_port, message)) return;
      handle_client_request(from, from_port, op, r, message);
      return;
    case RegistryOp::kLookupRequest:
      handle_lookup(r);
      return;
    case RegistryOp::kForward: {
      if (!replicated_) {
        ++stats_.drops_unknown_op;
        if (tm_drops_unknown_op_) tm_drops_unknown_op_->add();
        return;
      }
      const net::NodeId orig_from = r.u32();
      const net::Port orig_port = r.u16();
      const std::uint32_t length = r.u32();
      if (!r.ok() || r.remaining() < length) {
        ++stats_.drops_malformed;
        if (tm_drops_malformed_) tm_drops_malformed_->add();
        return;
      }
      net::ByteReader inner{std::span<const std::uint8_t>{
          message->header.data() + (message->header.size() - r.remaining()),
          length}};
      const auto inner_op = static_cast<RegistryOp>(inner.u8());
      if (!inner.ok() || (inner_op != RegistryOp::kJoinRequest &&
                          inner_op != RegistryOp::kMemberLeave &&
                          inner_op != RegistryOp::kMemberEvict)) {
        ++stats_.drops_malformed;
        if (tm_drops_malformed_) tm_drops_malformed_->add();
        return;
      }
      // Apply if we lead, queue otherwise — never re-forward a forward, so
      // two replicas with divergent views cannot ping-pong a request.
      if (is_leader()) {
        handle_client_request(orig_from, orig_port, inner_op, inner, message);
      } else if (queued_writes_.size() < kMaxQueuedWrites) {
        net::ByteWriter copy;
        copy.bytes(std::span<const std::uint8_t>{
            message->header.data() + (message->header.size() - r.remaining()),
            length});
        queued_writes_.push_back(
            QueuedWrite{orig_from, orig_port, net::make_message(copy.take())});
        ++stats_.queued_writes;
      } else {
        ++stats_.drops_queue_full;
      }
      return;
    }
    case RegistryOp::kReplicaHeartbeat:
    case RegistryOp::kRegistrySync:
    case RegistryOp::kSyncRequest:
    case RegistryOp::kSyncDone:
      if (!replicated_) {
        ++stats_.drops_unknown_op;
        if (tm_drops_unknown_op_) tm_drops_unknown_op_->add();
        return;
      }
      handle_replica_op(from, op, r);
      return;
    default:
      DPROC_WARN() << "registry: unexpected op " << static_cast<int>(op)
                   << " from node " << from;
      ++stats_.drops_unknown_op;
      if (tm_drops_unknown_op_) tm_drops_unknown_op_->add();
      return;
  }
}

void RegistryServer::handle_client_request(net::NodeId from,
                                           net::Port from_port, RegistryOp op,
                                           net::ByteReader& r,
                                           const net::MessagePtr& message) {
  (void)message;
  switch (op) {
    case RegistryOp::kJoinRequest:
      handle_join(from, r);
      return;
    case RegistryOp::kMemberLeave:
    case RegistryOp::kMemberEvict: {
      Member member{r.u32(), r.u16()};
      if (!r.ok()) {
        DPROC_WARN() << "registry: malformed removal request from node "
                     << from;
        ++stats_.drops_malformed;
        if (tm_drops_malformed_) tm_drops_malformed_->add();
        return;
      }
      remove_member(member, op == RegistryOp::kMemberLeave
                                ? DropReason::kLeave
                                : DropReason::kEvict);
      // Always ack, even when the member was already gone: the sender may
      // be retrying through an outage and needs closure either way.
      nic_.send_datagram(from, from_port != 0 ? from_port : member.port,
                         encode_op_ack(op, member));
      return;
    }
    default:
      return;  // unreachable: dispatch only routes the three client writes
  }
}

void RegistryServer::handle_join(net::NodeId from, net::ByteReader& r) {
  const std::string name = r.str();
  Member member{r.u32(), r.u16()};
  if (!r.ok()) {
    DPROC_WARN() << "registry: malformed join request from node " << from;
    ++stats_.drops_malformed;
    if (tm_drops_malformed_) tm_drops_malformed_->add();
    return;
  }

  auto [it, created] = channels_.try_emplace(name);
  ChannelRecord& record = it->second;
  if (created) {
    record.id = next_id_++;
    record.name = name;
    DPROC_INFO() << "registry: created channel '" << name << "' id "
                 << record.id;
  }

  const bool already_member =
      std::find(record.members.begin(), record.members.end(), member) !=
      record.members.end();
  if (already_member) {
    ++stats_.duplicate_joins;
    if (tm_duplicate_joins_) tm_duplicate_joins_->add();
    if (record.version == 0) {
      // First mutation of a fresh record still replicates (a forwarded
      // duplicate join must not leave followers without the channel).
      replicate_mutation(record, nullptr);
    }
  } else {
    ++stats_.joins;
    if (tm_joins_) tm_joins_->add();
    record.members.push_back(member);
    // Replicate before any client-visible send: a delivered join response
    // then implies the sync frames left this node first, so a crash cannot
    // acknowledge a registration the surviving replicas never heard of.
    replicate_mutation(record, nullptr);
  }
  // Reply with the membership minus the joiner itself (on an idempotent
  // re-join the joiner must not learn itself as a peer), then notify the
  // other members. The response goes to the joining member directly, so it
  // also lands right when the request was forwarded here by a follower
  // replica. A duplicate join is notified too: it is a retry, and the
  // original fan-out may have died with the old leader — re-notifying is
  // idempotent on the client and heals the orphaned-member window.
  std::vector<Member> others;
  others.reserve(record.members.size());
  for (const Member& m : record.members) {
    if (m != member) others.push_back(m);
  }
  nic_.send_datagram(member.node, member.port,
                     encode_join_response(name, record.id, others));
  for (const Member& existing : others) {
    nic_.send_datagram(existing.node, existing.port,
                       encode_member_notify(record.id, member));
  }
}

void RegistryServer::handle_lookup(net::ByteReader& r) {
  const std::string name = r.str();
  Member reply_to{r.u32(), r.u16()};
  if (!r.ok()) {
    ++stats_.drops_malformed;
    if (tm_drops_malformed_) tm_drops_malformed_->add();
    return;
  }
  if (recovering_) return;  // a stale table must not seed client caches
  ++stats_.lookups;
  auto it = channels_.find(name);
  const bool found = it != channels_.end();
  static const std::vector<Member> kNoMembers;
  if (found && replicated_ && rep_.client_cache) {
    // Remember who holds a cached copy, for invalidation on mutation.
    std::vector<Member>& cachers = lookup_cachers_[name];
    if (std::find(cachers.begin(), cachers.end(), reply_to) == cachers.end()) {
      cachers.push_back(reply_to);
    }
  }
  nic_.send_datagram(
      reply_to.node, reply_to.port,
      encode_lookup_response(name, found, found ? it->second.id : 0,
                             found ? it->second.members : kNoMembers));
}

void RegistryServer::remove_member(Member member, DropReason reason) {
  bool removed_any = false;
  for (auto& [name, record] : channels_) {
    auto it = std::find(record.members.begin(), record.members.end(), member);
    if (it == record.members.end()) continue;
    record.members.erase(it);
    removed_any = true;
    // Replicate first (same delivered-implies-synced ordering as joins),
    // then survivors drop the member; the member itself also hears about it
    // so a spurious eviction triggers a re-join, not a silent split-brain.
    replicate_mutation(record, &member);
    for (const Member& survivor : record.members) {
      nic_.send_datagram(survivor.node, survivor.port,
                         encode_member_drop(record.id, member, reason));
    }
    nic_.send_datagram(member.node, member.port,
                       encode_member_drop(record.id, member, reason));
  }
  if (removed_any) {
    if (reason == DropReason::kLeave) {
      ++stats_.leaves;
      if (tm_leaves_) tm_leaves_->add();
    } else {
      ++stats_.evictions;
      if (tm_evictions_) tm_evictions_->add();
    }
    DPROC_INFO() << "registry: member node " << member.node << " removed ("
                 << (reason == DropReason::kLeave ? "leave" : "evict") << ")";
  }
}

}  // namespace dproc::kecho
